"""Fixed-base and multi-exponentiation acceleration (the crypto hot path).

Every scheme in :mod:`repro.crypto` bottoms out in modular exponentiation,
and almost all of those exponentiations share a handful of *long-lived*
bases: the group generator ``g``, the broker's and judge's public keys, and
the roster membership keys.  Exponentiating a known base is embarrassingly
precomputable — this module provides the three standard accelerations from
the e-cash / signature literature and the machinery to apply them
transparently:

* :class:`FixedBaseTable` — windowed fixed-base precomputation
  (Brickell–Gordon–McCurley–Wilson).  A one-time table of
  ``base**(j * 2**(w*i))`` turns every later exponentiation into
  ``ceil(bits/w)`` modular multiplications and **zero** squarings — measured
  4–6× faster than CPython's native ``pow`` at our parameter sizes.
* :func:`multi_exp` — simultaneous multi-exponentiation.  Cached bases are
  resolved through their tables; the remaining ad-hoc bases share one
  interleaved square-and-multiply loop (Straus/Shamir), so a product of
  ``k`` exponentiations costs one set of squarings instead of ``k``.
* An **auto-promotion cache**: any base seen :data:`PROMOTE_AFTER` times for
  the same modulus gets a table built and cached (bounded LRU).  Long-lived
  keys therefore accelerate themselves; one-shot bases never pay the table
  cost.  Verifiers that only ever see a key as an integer on the wire reach
  the same cache as code holding the rich objects.

The module also memoizes subgroup-membership checks (``x**q == 1 mod p``),
which cost a full exponentiation and are repeated endlessly for the same
handful of keys by protocol code.

Thread-safety: the caches are process-local plain dicts guarded by the GIL;
entries are only ever added, and a racing duplicate build is harmless.  The
parallel sweep runner forks workers, each inheriting (then growing) its own
copy.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = [
    "FixedBaseTable",
    "fixed_base",
    "precompute",
    "mod_pow",
    "multi_exp",
    "is_member",
    "clear_caches",
    "export_cache",
    "install_cache",
]

#: Build-and-cache a table for a base after this many uses with the same
#: modulus.  2 means "promote on the second sighting": the table build costs
#: roughly five native exponentiations, so a base used a handful of times
#: already breaks even, and long-lived keys win 4-6x forever after.
PROMOTE_AFTER = 2

#: Window width for cached (long-lived) tables.  Bigger windows trade build
#: time for per-exponentiation speed; 5 is the measured sweet spot when the
#: table lives for many uses.
CACHED_WINDOW = 5

#: Window width for ephemeral tables built for one signature's worth of
#: uses (e.g. the ciphertext bases inside a group-signature roster loop).
EPHEMERAL_WINDOW = 4

#: Straus interleaving window for ad-hoc simultaneous exponentiation.
_STRAUS_WINDOW = 4

#: Ad-hoc base count at which the bucket (Pippenger) method overtakes Straus.
#: Straus pays a per-base window table (``2**w - 1`` multiplications) that the
#: bucket method does not; past a dozen-odd bases the buckets win and keep
#: winning — the batched group-signature test routinely brings hundreds.
_PIPPENGER_MIN = 16

_MAX_TABLES = 256  # cached FixedBaseTable entries (LRU)
_MAX_COUNTS = 8192  # promotion counters before mass eviction
_MAX_MEMBERS = 8192  # memoized positive membership checks


class FixedBaseTable:
    """Windowed precomputation for one ``(base, modulus)`` pair.

    The table stores ``base**(j * 2**(window*i)) mod modulus`` for every
    window digit ``j`` and every digit position ``i`` up to ``max_bits``.
    :meth:`pow` then assembles ``base**e`` as a product of one table entry
    per non-zero digit of ``e`` — no squarings at all.

    ``order``, when given, is the multiplicative order of ``base`` (our
    bases are order-``q`` subgroup elements); exponents are reduced modulo
    it, which also makes the inversion-free ``base**-c == base**(order-c)``
    rewriting at call sites safe.
    """

    __slots__ = ("base", "modulus", "order", "window", "max_bits", "_rows")

    def __init__(
        self,
        base: int,
        modulus: int,
        max_bits: int,
        window: int = CACHED_WINDOW,
        order: int | None = None,
    ) -> None:
        if not (0 < base < modulus):
            raise ValueError("base must be a reduced nonzero residue")
        if max_bits < 1 or window < 1:
            raise ValueError("max_bits and window must be positive")
        self.base = base
        self.modulus = modulus
        self.order = order
        self.window = window
        self.max_bits = max_bits
        n_digits = (max_bits + window - 1) // window
        span = 1 << window
        rows: list[list[int]] = []
        b = base
        for _ in range(n_digits):
            row = [1] * span
            acc = 1
            for j in range(1, span):
                acc = (acc * b) % modulus
                row[j] = acc
            rows.append(row)
            # Next row's base is base**(2**window) relative to this row.
            b = (row[span - 1] * b) % modulus
        self._rows = rows

    @classmethod
    def restore(
        cls,
        base: int,
        modulus: int,
        max_bits: int,
        window: int,
        order: int | None,
        rows: list[list[int]],
    ) -> FixedBaseTable:
        """Rebuild a table from serialized rows without recomputing them.

        The counterpart of :func:`export_cache`: a worker process installs
        tables its parent already paid to build.  Rows are trusted input
        (they come from this process family, not the network) — only their
        shape is checked.
        """
        span = 1 << window
        n_digits = (max_bits + window - 1) // window
        if len(rows) != n_digits or any(len(row) != span for row in rows):
            raise ValueError("serialized table shape does not match its header")
        table = cls.__new__(cls)
        table.base = base
        table.modulus = modulus
        table.order = order
        table.window = window
        table.max_bits = max_bits
        table._rows = rows
        return table

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` via table lookups only."""
        if self.order is not None:
            exponent %= self.order
        if exponent < 0:
            raise ValueError("negative exponent needs a known order")
        if exponent.bit_length() > self.max_bits:
            return pow(self.base, exponent, self.modulus)  # beyond the table
        w = self.window
        mask = (1 << w) - 1
        m = self.modulus
        result = 1
        i = 0
        rows = self._rows
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * rows[i][digit]) % m
            exponent >>= w
            i += 1
        return result


# -- global caches ------------------------------------------------------------

_tables: OrderedDict[tuple[int, int], FixedBaseTable] = OrderedDict()
_use_counts: dict[tuple[int, int], int] = {}
_members: OrderedDict[tuple[int, int, int], bool] = OrderedDict()


def clear_caches() -> None:
    """Drop every cached table, counter, and membership memo (test hook)."""
    _tables.clear()
    _use_counts.clear()
    _members.clear()


def _lookup(base: int, modulus: int) -> FixedBaseTable | None:
    table = _tables.get((base, modulus))
    if table is not None:
        _tables.move_to_end((base, modulus))
    return table


def precompute(base: int, modulus: int, max_bits: int, order: int | None = None) -> FixedBaseTable:
    """Build (or fetch) the cached table for ``(base, modulus)``.

    Call this eagerly for keys known to be long-lived — the generator, the
    judge's opening key, roster membership keys — to skip the promotion
    warm-up entirely.
    """
    key = (base, modulus)
    table = _lookup(base, modulus)
    if table is not None and table.max_bits >= max_bits:
        return table
    table = FixedBaseTable(base, modulus, max_bits, window=CACHED_WINDOW, order=order)
    _tables[key] = table
    _tables.move_to_end(key)
    while len(_tables) > _MAX_TABLES:
        _tables.popitem(last=False)
    _use_counts.pop(key, None)
    return table


def fixed_base(base: int, modulus: int) -> FixedBaseTable | None:
    """The cached table for ``(base, modulus)``, if one exists."""
    return _lookup(base, modulus)


def _note_use(base: int, modulus: int, max_bits: int, order: int | None) -> FixedBaseTable | None:
    """Count a cache miss; promote the base once it proves to be recurrent."""
    key = (base, modulus)
    count = _use_counts.get(key, 0) + 1
    if count >= PROMOTE_AFTER:
        return precompute(base, modulus, max_bits, order=order)
    if len(_use_counts) >= _MAX_COUNTS:
        _use_counts.clear()  # cheap mass eviction; counters are advisory
    _use_counts[key] = count
    return None


def mod_pow(base: int, exponent: int, modulus: int, order: int | None = None) -> int:
    """Drop-in ``pow(base, exponent, modulus)`` with transparent acceleration.

    Uses the base's fixed table when one is cached, promotes recurrent
    bases, and otherwise defers to native ``pow``.  ``order`` is the base's
    multiplicative order when known (enables exponent reduction and sizes
    the promotion table).
    """
    if modulus <= 1 or exponent < 0:
        return pow(base, exponent, modulus)
    base %= modulus
    if base in (0, 1):
        return base if exponent else 1 % modulus
    if order is not None:
        exponent %= order
    max_bits = (order or modulus).bit_length()
    table = _lookup(base, modulus)
    if table is None and exponent.bit_length() <= max_bits:
        table = _note_use(base, modulus, max_bits, order)
    if table is not None:
        return table.pow(exponent)
    return pow(base, exponent, modulus)


def _straus(pairs: list[tuple[int, int]], modulus: int) -> int:
    """Interleaved (Straus/Shamir) product of ``base**exp`` for ad-hoc bases.

    One shared squaring chain for all bases; per-base windowed digit tables
    built on the fly.  Worth it from two bases up.
    """
    w = _STRAUS_WINDOW
    span = 1 << w
    tables: list[list[int]] = []
    for base, _ in pairs:
        row = [1] * span
        acc = 1
        for j in range(1, span):
            acc = (acc * base) % modulus
            row[j] = acc
        tables.append(row)
    n_digits = (max(e.bit_length() for _, e in pairs) + w - 1) // w
    mask = span - 1
    result = 1
    for i in range(n_digits - 1, -1, -1):
        if result != 1:
            for _ in range(w):
                result = (result * result) % modulus
        shift = w * i
        for (row, (_, exponent)) in zip(tables, pairs):
            digit = (exponent >> shift) & mask
            if digit:
                result = (result * row[digit]) % modulus
    return result


def _bucket_window(n_bases: int, max_bits: int) -> int:
    """Bucket width minimizing the estimated multiplication count."""
    best_c = 1
    best_cost: int | None = None
    for c in range(1, 17):
        windows = (max_bits + c - 1) // c
        cost = n_bases * windows + windows * 2 * (1 << c) + max_bits
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def _pippenger(pairs: list[tuple[int, int]], modulus: int) -> int:
    """Bucket-method product of ``base**exp`` for *many* ad-hoc bases.

    Per window, each base is multiplied into the bucket of its exponent
    digit (one multiplication per base per window, no per-base tables), and
    the buckets collapse with the running-sum trick (two multiplications
    per occupied digit level).  For the hundreds of 64-bit-exponent bases a
    batched signature check produces, this costs a fraction of Straus.
    """
    max_bits = max(e.bit_length() for _, e in pairs)
    c = _bucket_window(len(pairs), max_bits)
    mask = (1 << c) - 1
    result = 1
    for i in range((max_bits + c - 1) // c - 1, -1, -1):
        if result != 1:
            for _ in range(c):
                result = (result * result) % modulus
        shift = c * i
        buckets: dict[int, int] = {}
        for base, exponent in pairs:
            digit = (exponent >> shift) & mask
            if digit:
                held = buckets.get(digit)
                buckets[digit] = base if held is None else (held * base) % modulus
        if buckets:
            acc = 1
            running = 1
            for digit in range(max(buckets), 0, -1):
                held = buckets.get(digit)
                if held is not None:
                    acc = (acc * held) % modulus
                running = (running * acc) % modulus
            result = (result * running) % modulus
    return result


def multi_exp(
    pairs,
    modulus: int,
    order: int | None = None,
    tables: dict[int, FixedBaseTable] | None = None,
    promote: bool = True,
) -> int:
    """``prod(base**exp) mod modulus`` for a sequence of ``(base, exp)``.

    The workhorse behind ``dsa_verify``'s ``g**u1 * y**u2`` and the
    group-signature clause equations.  Each base is resolved in order of
    preference: caller-supplied ephemeral ``tables`` (keyed by base), the
    global fixed-base cache, then one shared loop for whatever is left —
    Straus interleaving for a few bases, the bucket method
    (:func:`_pippenger`) once there are :data:`_PIPPENGER_MIN` or more (a
    single leftover base falls back to native ``pow``).

    ``order`` (the common multiplicative order of the bases, when known)
    reduces every exponent first — this is what lets callers write inverses
    as ``base**(order - c)`` and stay inversion-free.  ``promote=False``
    skips use-counting for uncached bases: batch verifiers pass throwaway
    per-signature bases that would only churn the promotion counters.
    """
    result = 1
    adhoc: list[tuple[int, int]] = []
    max_bits = (order or modulus).bit_length()
    for base, exponent in pairs:
        base %= modulus
        if order is not None:
            exponent %= order
        if exponent == 0 or base == 1:
            continue
        if base == 0:
            return 0
        table = tables.get(base) if tables else None
        if table is None:
            table = _lookup(base, modulus)
            if table is None and promote and exponent.bit_length() <= max_bits:
                table = _note_use(base, modulus, max_bits, order)
        if table is not None:
            result = (result * table.pow(exponent)) % modulus
        else:
            adhoc.append((base, exponent))
    if len(adhoc) == 1:
        base, exponent = adhoc[0]
        result = (result * pow(base, exponent, modulus)) % modulus
    elif len(adhoc) >= _PIPPENGER_MIN:
        result = (result * _pippenger(adhoc, modulus)) % modulus
    elif adhoc:
        result = (result * _straus(adhoc, modulus)) % modulus
    return result


def export_cache() -> bytes:
    """Serialize every cached fixed-base table into one canonical blob.

    The tables for long-lived bases (generator, opening key, roster keys,
    broker key) cost several native exponentiations each to build; a worker
    pool that forks per run would otherwise rebuild all of them per process.
    The parent calls this once and ships the blob through the worker
    initializer, where :func:`install_cache` maps it back in.
    """
    from repro.messages.codec import encode

    entries = []
    for (base, modulus), table in _tables.items():
        entries.append(
            {
                "base": base,
                "modulus": modulus,
                "order": table.order,
                "window": table.window,
                "max_bits": table.max_bits,
                "rows": tuple(tuple(row) for row in table._rows),
            }
        )
    return encode(tuple(entries))


def install_cache(blob: bytes) -> int:
    """Install tables serialized by :func:`export_cache`; returns the count.

    Existing entries for the same ``(base, modulus)`` are kept if they cover
    at least as many bits (a rebuilt local table is never downgraded).
    """
    from repro.messages.codec import decode

    installed = 0
    for entry in decode(blob):
        key = (entry["base"], entry["modulus"])
        held = _tables.get(key)
        if held is not None and held.max_bits >= entry["max_bits"]:
            continue
        _tables[key] = FixedBaseTable.restore(
            base=entry["base"],
            modulus=entry["modulus"],
            max_bits=entry["max_bits"],
            window=entry["window"],
            order=entry["order"],
            rows=[list(row) for row in entry["rows"]],
        )
        _tables.move_to_end(key)
        installed += 1
    while len(_tables) > _MAX_TABLES:
        _tables.popitem(last=False)
    return installed


def is_member(x: int, q: int, p: int) -> bool:
    """Memoized order-``q`` subgroup membership test in ``Z_p^*``.

    Protocol code re-checks the same handful of public keys on every
    message; each check is a full exponentiation.  Positive and negative
    results are both memoized (bounded LRU) — group parameters are
    immutable, so the answer never changes.
    """
    if not 0 < x < p:
        return False
    key = (x, q, p)
    hit = _members.get(key)
    if hit is not None:
        _members.move_to_end(key)
        return hit
    # No promotion counting here: the memo below already removes repeats.
    # A cached table may only be used if it does not reduce exponents by an
    # *assumed* order q — for a non-member, x**(q % q) would lie.
    table = _lookup(x, p)
    if table is not None and table.order is None:
        ok = table.pow(q) == 1
    else:
        ok = pow(x, q, p) == 1
    _members[key] = ok
    while len(_members) > _MAX_MEMBERS:
        _members.popitem(last=False)
    return ok
