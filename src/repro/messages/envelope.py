"""Signed message envelopes.

WhoPay's protocols (Section 4.2) use two signing patterns:

* ``{M}_sk`` — a single DSA signature (broker signing coins, owners signing
  bindings, identity signatures during purchase/sync).
  → :class:`SignedMessage`, built with :func:`seal`.
* ``{{M}_skC}_gk`` — holder operations: the coin's secret key proves
  holdership, the group key proves (anonymously) that the holder is a
  legitimate user and lets the judge recover the identity on fraud.
  → :class:`DualSignedMessage`, built with :func:`group_seal`.

Payloads are codec values (see :mod:`repro.messages.codec`); the envelope
stores the canonical encoding so signatures stay valid across re-serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.dsa import DsaSignature, dsa_sign, dsa_verify
from repro.crypto.group_signature import GroupMemberKey, GroupPublicKey, GroupSignature, group_sign, group_verify
from repro.crypto.keys import KeyPair, PublicKey
from repro.messages.codec import decode, encode


@dataclass(frozen=True)
class SignedMessage:
    """A payload plus one DSA signature by ``signer``."""

    payload_bytes: bytes
    signer: PublicKey
    signature: DsaSignature

    @property
    def payload(self) -> Any:
        """The decoded payload value (memoized: the fields are frozen)."""
        cached = self.__dict__.get("_payload_memo")
        if cached is None:
            cached = decode(self.payload_bytes)
            object.__setattr__(self, "_payload_memo", cached)
        return cached

    def verify(self) -> bool:
        """True iff the signature matches the payload and claimed signer."""
        return dsa_verify(self.signer, self.payload_bytes, self.signature)

    def encode(self) -> bytes:
        """Canonical encoding of the whole envelope (for nesting/transport).

        ``sig_c`` is the signature's nonce-commitment hint (``g**k mod p``);
        it travels with the envelope so downstream verifiers can use the
        randomized batch test (:func:`repro.crypto.dsa.dsa_batch_verify`)
        instead of per-envelope verification.  It is untrusted metadata:
        dropping or corrupting it can never turn an invalid signature valid.
        """
        cached = self.__dict__.get("_encode_memo")
        if cached is None:
            cached = encode(
                {
                    "payload": self.payload_bytes,
                    "signer_y": self.signer.y,
                    "sig_r": self.signature.r,
                    "sig_s": self.signature.s,
                    "sig_c": self.signature.commit,
                }
            )
            object.__setattr__(self, "_encode_memo", cached)
        return cached


@dataclass(frozen=True)
class DualSignedMessage:
    """A payload signed with a coin key and countersigned with a group key.

    The group signature covers the *coin-signed envelope*, matching the
    paper's ``{{pk_CW, C_V}_skCV}_gkV`` structure: tampering with either
    layer invalidates the outer signature.

    ``roster_version`` records which roster snapshot the signer used, so a
    verifier who registered earlier/later can fetch exactly that snapshot
    from the judge and verify.
    """

    inner: SignedMessage
    group_signature: GroupSignature
    roster_version: int = 0

    @property
    def payload(self) -> Any:
        """The decoded payload value."""
        return self.inner.payload

    @property
    def payload_bytes(self) -> bytes:
        """Canonical bytes of the payload."""
        return self.inner.payload_bytes

    @property
    def coin_signer(self) -> PublicKey:
        """The coin public key whose holder signed the inner envelope."""
        return self.inner.signer

    def verify(self, gpk: GroupPublicKey) -> bool:
        """Check both layers; pure predicate."""
        if not self.inner.verify():
            return False
        return self.verify_group(gpk)

    def verify_group(self, gpk: GroupPublicKey) -> bool:
        """Check only the group-signature layer; pure predicate.

        For callers (the broker) that fold the inner DSA signature into a
        randomized batch (:func:`repro.crypto.dsa.dsa_batch_verify`) with
        the other DSA signatures of the same request.
        """
        return group_verify(gpk, self.inner.encode(), self.group_signature)


def seal(keypair: KeyPair, payload: Any, nonce_pool: Any = None) -> SignedMessage:
    """Encode ``payload`` and sign it with ``keypair``.

    ``nonce_pool`` (a :class:`repro.crypto.dsa.DsaNoncePool`) lets hot
    signers — the broker minting bindings per group-commit flush — draw a
    precomputed nonce triple instead of deriving one per signature.
    """
    payload_bytes = encode(payload)
    return SignedMessage(
        payload_bytes=payload_bytes,
        signer=keypair.public,
        signature=dsa_sign(keypair, payload_bytes, pool=nonce_pool),
    )


def group_seal(
    coin_keypair: KeyPair,
    member: GroupMemberKey,
    gpk: GroupPublicKey,
    payload: Any,
) -> DualSignedMessage:
    """Build the dual-signed holder envelope ``{{payload}_skC}_gk``."""
    inner = seal(coin_keypair, payload)
    return DualSignedMessage(
        inner=inner,
        group_signature=group_sign(gpk, member, inner.encode()),
        roster_version=gpk.version,
    )
