"""Canonical, deterministic byte encoding for protocol values.

A tiny self-describing binary format (a deliberately boring TLV scheme):

* ``int``   — tag ``i``, signed magnitude
* ``bytes`` — tag ``b``
* ``str``   — tag ``s``, UTF-8
* ``bool``  — tag ``t``/``f``
* ``None``  — tag ``n``
* ``tuple``/``list`` — tag ``l``, length-prefixed items (decoded as tuple)
* ``dict`` (string keys) — tag ``d``, entries sorted by key

Two properties matter for the payment protocols:

1. **Determinism** — equal values encode to equal bytes (dicts are sorted),
   so signatures over encoded values are well-defined.
2. **Injectivity** — every length is explicit, so distinct values never
   share an encoding (no concatenation ambiguity to exploit in a forgery).

The format is versioned by the leading magic byte so stored messages can be
rejected cleanly if the codec ever changes.
"""

from __future__ import annotations

from typing import Any

MAGIC = b"\x01"  # codec version 1


class CodecError(ValueError):
    """Raised on unencodable values or malformed byte strings."""


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` (see module docstring for the domain)."""
    return MAGIC + _encode(value)


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` on bad input."""
    if not data[:1] == MAGIC:
        raise CodecError("bad magic byte (codec version mismatch?)")
    value, offset = _decode(data, 1)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after value")
    return value


def _varlen(n: int) -> bytes:
    return n.to_bytes(8, "big")


def _encode(value: Any) -> bytes:
    if value is None:
        return b"n"
    # bool must be tested before int (bool is an int subclass).
    if isinstance(value, bool):
        return b"t" if value else b"f"
    if isinstance(value, int):
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        body = magnitude.to_bytes(max(1, (magnitude.bit_length() + 7) // 8), "big")
        return b"i" + sign + _varlen(len(body)) + body
    if isinstance(value, bytes):
        return b"b" + _varlen(len(value)) + value
    if isinstance(value, str):
        body = value.encode("utf-8")
        return b"s" + _varlen(len(body)) + body
    if isinstance(value, (list, tuple)):
        body = b"".join(_encode(item) for item in value)
        return b"l" + _varlen(len(value)) + body
    if isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(k, str) for k in keys):
            raise CodecError("dict keys must be strings")
        if len(set(keys)) != len(keys):  # pragma: no cover - dicts dedupe keys
            raise CodecError("duplicate dict keys")
        body = b"".join(_encode(k) + _encode(value[k]) for k in sorted(keys))
        return b"d" + _varlen(len(keys)) + body
    raise CodecError(f"cannot encode values of type {type(value).__name__}")


def _take(data: bytes, offset: int, n: int) -> tuple[bytes, int]:
    if offset + n > len(data):
        raise CodecError("truncated message")
    return data[offset : offset + n], offset + n


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == b"n":
        return None, offset
    if tag == b"t":
        return True, offset
    if tag == b"f":
        return False, offset
    if tag == b"i":
        sign, offset = _take(data, offset, 1)
        if sign not in (b"+", b"-"):
            raise CodecError("bad integer sign byte")
        raw_len, offset = _take(data, offset, 8)
        body, offset = _take(data, offset, int.from_bytes(raw_len, "big"))
        magnitude = int.from_bytes(body, "big")
        return (-magnitude if sign == b"-" else magnitude), offset
    if tag == b"b":
        raw_len, offset = _take(data, offset, 8)
        body, offset = _take(data, offset, int.from_bytes(raw_len, "big"))
        return body, offset
    if tag == b"s":
        raw_len, offset = _take(data, offset, 8)
        body, offset = _take(data, offset, int.from_bytes(raw_len, "big"))
        try:
            return body.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8 in string") from exc
    if tag == b"l":
        raw_count, offset = _take(data, offset, 8)
        count = int.from_bytes(raw_count, "big")
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == b"d":
        raw_count, offset = _take(data, offset, 8)
        count = int.from_bytes(raw_count, "big")
        out: dict[str, Any] = {}
        previous_key: str | None = None
        for _ in range(count):
            key, offset = _decode(data, offset)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            if previous_key is not None and key <= previous_key:
                raise CodecError("dict keys not in canonical order")
            value, offset = _decode(data, offset)
            out[key] = value
            previous_key = key
        return out, offset
    raise CodecError(f"unknown tag byte {tag!r}")
