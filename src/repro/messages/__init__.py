"""Canonical message encoding and signing envelopes.

Every protocol object in the reproduction — coins, bindings, transfer
requests — must have exactly one byte representation so that "sign the
binding" is well-defined.  :mod:`repro.messages.codec` provides that
canonical encoding; :mod:`repro.messages.envelope` provides the single- and
dual-signature wrappers the WhoPay protocols use (Section 4.2: holder
operations are signed with both the coin key and the group key).
"""

from repro.messages.codec import CodecError, decode, encode
from repro.messages.envelope import DualSignedMessage, SignedMessage, group_seal, seal

__all__ = [
    "CodecError",
    "encode",
    "decode",
    "SignedMessage",
    "DualSignedMessage",
    "seal",
    "group_seal",
]
