"""Small AST utilities shared by the rule implementations."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_attr(node: ast.AST) -> str | None:
    """The last identifier of a call receiver: ``self.rpc`` → ``"rpc"``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def identifier_parts(identifier: str) -> set[str]:
    """Snake-case parts of an identifier, lowercased (``sig_r`` → {sig, r})."""
    return {part for part in identifier.lower().split("_") if part}


def in_package(module: str, prefixes: tuple[str, ...]) -> bool:
    """True iff dotted ``module`` is any of ``prefixes`` or inside one."""
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def exception_names(type_node: ast.expr | None) -> set[str]:
    """Class names an ``except`` clause catches (empty for bare except)."""
    if type_node is None:
        return set()
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names: set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


def body_is_silent(body: list[ast.stmt]) -> bool:
    """True iff a block does nothing: only ``pass`` / bare constants."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True
