"""Module-level call graph over an analyzed :class:`Program`.

Resolution is deliberately honest rather than complete: a call site
resolves to the functions it *provably* names — same-module functions,
imports resolved through :mod:`repro.lint.resolve` bindings,
``self.method`` through a name-based class hierarchy, and methods whose
name is defined exactly once program-wide.  Anything else resolves to the
empty list and callers treat it conservatively.  That mirrors how the
wire-schema rule treats dynamic message kinds: report only what you can
prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lint.resolve import ModuleSymbols, collect_symbols, dotted_prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import ModuleInfo, Program

#: Method names too generic to resolve by uniqueness — they collide with
#: builtin container/str/bytes methods, so a lone program definition of
#: e.g. ``get`` must not capture every ``d.get(...)`` in the codebase.
_BUILTIN_METHOD_NAMES = frozenset(
    {
        "append", "extend", "insert", "pop", "remove", "discard", "clear",
        "get", "setdefault", "update", "items", "keys", "values", "copy",
        "add", "join", "split", "strip", "format", "encode", "decode",
        "read", "write", "close", "sort", "index", "count", "hexdigest",
        "digest", "popitem",
    }
)


@dataclass
class FunctionInfo:
    """One module-level function or method definition."""

    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        local = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.module.module}:{local}"

    def param_names(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names


class _Hierarchy:
    """Union-find over class *names*: a class and its bases share a group.

    Name-based (no MRO computation): good enough to link ``Peer`` /
    ``AnonymousOwnerPeer`` / ``CoinShop`` so ``self.method`` resolution sees
    both the inherited definition and any overrides.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def _find(self, name: str) -> str:
        root = name
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        while self._parent.get(name, name) != name:
            self._parent[name], name = root, self._parent[name]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[ra] = rb

    def related(self, a: str, b: str) -> bool:
        return self._find(a) == self._find(b)


class FunctionIndex:
    """All function definitions in a program, with call-site resolution."""

    def __init__(self, program: "Program") -> None:
        self.functions: list[FunctionInfo] = []
        self.symbols: dict[str, ModuleSymbols] = {}
        self._toplevel: dict[tuple[str, str], FunctionInfo] = {}
        self._methods: dict[str, list[FunctionInfo]] = {}
        self._hierarchy = _Hierarchy()
        for info in program.modules:
            self.symbols[info.module] = collect_symbols(info.tree)
            for stmt in info.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FunctionInfo(info, stmt, None)
                    self.functions.append(fn)
                    self._toplevel[(info.module, stmt.name)] = fn
                elif isinstance(stmt, ast.ClassDef):
                    for base in stmt.bases:
                        base_name = (
                            base.id
                            if isinstance(base, ast.Name)
                            else base.attr if isinstance(base, ast.Attribute) else None
                        )
                        if base_name is not None:
                            self._hierarchy.union(stmt.name, base_name)
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            fn = FunctionInfo(info, sub, stmt.name)
                            self.functions.append(fn)
                            self._methods.setdefault(sub.name, []).append(fn)
        self.by_qualname: dict[str, FunctionInfo] = {
            fn.qualname: fn for fn in self.functions
        }

    def callee_name(self, call: ast.Call) -> str | None:
        """The attribute/function name a call invokes, if syntactically plain."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def resolve_call(self, call: ast.Call, caller: FunctionInfo) -> list[FunctionInfo]:
        """Candidate definitions a call site may invoke (possibly empty)."""
        func = call.func
        module = caller.module.module
        symbols = self.symbols.get(module)
        if isinstance(func, ast.Name):
            local = self._toplevel.get((module, func.id))
            if local is not None:
                return [local]
            if symbols is not None:
                origin = symbols.imported_names.get(func.id)
                if origin is not None:
                    target = self._toplevel.get(origin)
                    if target is not None:
                        return [target]
            return []
        if not isinstance(func, ast.Attribute):
            return []
        name = func.attr
        # super().method — hierarchy definitions excluding the caller's own
        # class (a super call never re-enters the subclass override).
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and caller.cls is not None
        ):
            related = [
                fn
                for fn in self._methods.get(name, [])
                if fn.cls is not None
                and fn.cls != caller.cls
                and self._hierarchy.related(fn.cls, caller.cls)
            ]
            if related:
                return related
        # self.method — every definition in the caller's class hierarchy
        # (covers inherited definitions and subclass overrides alike).
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller.cls is not None
        ):
            related = [
                fn
                for fn in self._methods.get(name, [])
                if fn.cls is not None and self._hierarchy.related(fn.cls, caller.cls)
            ]
            if related:
                return related
        # module_alias.function
        if symbols is not None:
            prefix = dotted_prefix(func.value)
            if prefix is not None:
                head, _, rest = prefix.partition(".")
                base = symbols.module_aliases.get(head)
                candidates = []
                if base is not None:
                    candidates.append(f"{base}.{rest}" if rest else base)
                if head in symbols.plain_import_roots:
                    candidates.append(prefix)
                for target in candidates:
                    fn = self._toplevel.get((target, name))
                    if fn is not None:
                        return [fn]
        # x.method where the method name is unambiguous program-wide.
        if name not in _BUILTIN_METHOD_NAMES:
            methods = self._methods.get(name, [])
            if len(methods) == 1:
                return methods
        return []


def get_index(program: "Program") -> FunctionIndex:
    """The program's :class:`FunctionIndex`, built once and memoized."""
    cache = getattr(program, "_dataflow_index", None)
    if cache is None:
        cache = FunctionIndex(program)
        program._dataflow_index = cache  # type: ignore[attr-defined]
    return cache
