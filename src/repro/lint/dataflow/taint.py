"""Forward may-taint with interprocedural function summaries.

The lattice is small and label-based: an expression carries a set of
labels, where ``SRC`` means "a source value reaches here" and a bare name
means "whatever the caller passes for that parameter reaches here".
Summaries (labels that flow to the return value; parameters that flow into
a sink inside the callee) are iterated to a fixpoint, so taint crosses
function and module boundaries without inlining.

Specs (one per rule) decide what is a source, what sanitizes, which call
arguments are sinks, and in which modules sources/sinks are live.  Two
deliberate approximations, documented in ``docs/LINT.md``:

* calls into *barrier* modules (crypto primitives, encryption serializers)
  return clean — a signature or ciphertext does not reveal its key, so the
  sanctioned constructors are exactly the module boundary;
* unresolved calls propagate: the result of ``dict(x)`` / ``x.encode()``
  is as tainted as its arguments, because most unknown calls are
  structural (constructors, codecs) rather than declassifying.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.lint.dataflow.callgraph import FunctionIndex, FunctionInfo, get_index

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import Program

SRC = "SRC"

_MAX_ROUNDS = 6
_LOOP_PASSES = 3

Labels = frozenset[str]
_EMPTY: Labels = frozenset()


@dataclass(frozen=True)
class TaintFinding:
    path: str
    line: int
    col: int
    message: str


@dataclass
class Summary:
    """What a function does with taint, from the caller's point of view."""

    returns: frozenset[str] = _EMPTY
    sink_params: dict[str, str] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Summary)
            and self.returns == other.returns
            and self.sink_params == other.sink_params
        )


class TaintSpec:
    """What one rule considers a source, sanitizer, and sink."""

    code = "WP1xx"

    def in_source_scope(self, module: str) -> bool:
        raise NotImplementedError

    def in_sink_scope(self, module: str) -> bool:
        return self.in_source_scope(module)

    def is_barrier_module(self, module: str) -> bool:
        return False

    def is_source(self, expr: ast.expr) -> bool:
        return False

    def source_call(self, name: str | None) -> bool:
        return False

    def sanitizer_call(self, name: str | None) -> bool:
        return False

    def sink_args(
        self, call: ast.Call, fn: FunctionInfo
    ) -> list[tuple[ast.expr, str]]:
        """(argument expression, sink description) pairs for a call site."""
        return []

    def raise_is_sink(self, fn: FunctionInfo) -> str | None:
        """Sink description if exception arguments are sinks, else None."""
        return None

    def return_is_sink(self, fn: FunctionInfo) -> str | None:
        """Sink description if this function's return value is a sink."""
        return None

    def message(self, sink_description: str) -> str:
        raise NotImplementedError


def handler_names(index: FunctionIndex) -> frozenset[str]:
    """Method names registered as message handlers via ``node.on(KIND, h)``."""
    names: set[str] = set()
    for fn in index.functions:
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "on"
                and len(node.args) >= 2
            ):
                target = node.args[1]
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


class TaintAnalysis:
    """Runs one spec over a whole program; yields findings at sink hits."""

    def __init__(self, program: "Program", spec: TaintSpec) -> None:
        self.program = program
        self.spec = spec
        self.index = get_index(program)
        self.summaries: dict[str, Summary] = {}
        self.handlers = handler_names(self.index)
        self._findings: list[TaintFinding] = []
        self._collect = False

    # -- public ----------------------------------------------------------

    def run(self) -> list[TaintFinding]:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fn in self.index.functions:
                summary = self._analyze(fn)
                if summary != self.summaries.get(fn.qualname):
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        self._collect = True
        self._findings = []
        for fn in self.index.functions:
            self._analyze(fn)
        return sorted(set(self._findings), key=lambda f: (f.path, f.line, f.message))

    # -- per-function analysis -------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> Summary:
        env: dict[str, Labels] = {}
        params = fn.param_names()
        for name in params:
            env[name] = frozenset({name})
        self._fn = fn
        self._summary = Summary(returns=_EMPTY, sink_params={})
        self._exec_block(fn.node.body, env)
        return self._summary

    def _report(self, node: ast.AST, description: str) -> None:
        if self._collect and self.spec.in_sink_scope(self._fn.module.module):
            self._findings.append(
                TaintFinding(
                    path=self._fn.module.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=self.spec.message(description),
                )
            )

    def _hit_sink(self, node: ast.AST, labels: Labels, description: str) -> None:
        """A labeled value reached a sink: finding for SRC, summary for params."""
        if SRC in labels:
            self._report(node, description)
        for label in labels:
            if label != SRC:
                self._summary.sink_params.setdefault(label, description)

    # -- statements ------------------------------------------------------

    def _exec_block(self, stmts: Iterable[ast.stmt], env: dict[str, Labels]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict[str, Labels]) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._labels(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, labels, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._labels(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._labels(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = env.get(stmt.target.id, _EMPTY) | labels
        elif isinstance(stmt, ast.Return):
            labels = self._labels(stmt.value, env) if stmt.value else _EMPTY
            self._summary.returns |= labels
            description = self.spec.return_is_sink(self._fn)
            if description is not None and stmt.value is not None:
                self._hit_sink(stmt, labels, description)
        elif isinstance(stmt, ast.Raise):
            description = self.spec.raise_is_sink(self._fn)
            if stmt.exc is not None:
                labels = self._labels(stmt.exc, env)
                if description is not None:
                    self._hit_sink(stmt, labels, description)
        elif isinstance(stmt, ast.Expr):
            self._labels(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._labels(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._labels(stmt.iter, env)
            body_env = dict(env)
            self._assign(stmt.target, iter_labels, body_env)
            for _ in range(_LOOP_PASSES):
                before = dict(body_env)
                self._exec_block(stmt.body, body_env)
                if body_env == before:
                    break
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env, env)
        elif isinstance(stmt, ast.While):
            body_env = dict(env)
            for _ in range(_LOOP_PASSES):
                before = dict(body_env)
                self._labels(stmt.test, body_env)
                self._exec_block(stmt.body, body_env)
                if body_env == before:
                    break
            self._exec_block(stmt.orelse, body_env)
            self._merge(env, body_env, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._labels(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            merged = dict(env)
            self._merge(merged, body_env, env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                if handler.name:
                    handler_env[handler.name] = _EMPTY
                self._exec_block(handler.body, handler_env)
                self._merge(merged, handler_env, merged)
            self._exec_block(stmt.orelse, merged)
            self._exec_block(stmt.finalbody, merged)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions are not analyzed
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._labels(child, env)

    def _assign(self, target: ast.expr, labels: Labels, env: dict[str, Labels]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, labels, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels, env)
        # attribute/subscript targets: no field sensitivity (documented)

    @staticmethod
    def _merge(
        into: dict[str, Labels], a: dict[str, Labels], b: dict[str, Labels]
    ) -> None:
        into.clear()
        for key in set(a) | set(b):
            into[key] = a.get(key, _EMPTY) | b.get(key, _EMPTY)

    # -- expressions -----------------------------------------------------

    def _labels(self, expr: ast.expr | None, env: dict[str, Labels]) -> Labels:
        if expr is None:
            return _EMPTY
        out: Labels
        if isinstance(expr, ast.Constant):
            out = _EMPTY
        elif isinstance(expr, ast.Name):
            out = env.get(expr.id, _EMPTY)
        elif isinstance(expr, ast.Attribute):
            out = self._labels(expr.value, env)
        elif isinstance(expr, ast.Call):
            out = self._call_labels(expr, env)
        elif isinstance(expr, ast.Compare):
            self._labels(expr.left, env)
            for comp in expr.comparators:
                self._labels(comp, env)
            out = _EMPTY  # comparison results are booleans, not the operands
        elif isinstance(expr, ast.Lambda):
            out = _EMPTY
        else:
            collected: Labels = _EMPTY
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    collected |= self._labels(child, env)
                elif isinstance(child, ast.comprehension):
                    collected |= self._labels(child.iter, env)
            out = collected
        if self.spec.is_source(expr) and self.spec.in_source_scope(
            self._fn.module.module
        ):
            out = out | frozenset({SRC})
        return out

    def _call_labels(self, call: ast.Call, env: dict[str, Labels]) -> Labels:
        arg_labels = [self._labels(arg, env) for arg in call.args]
        kw_labels = {
            kw.arg: self._labels(kw.value, env) for kw in call.keywords
        }  # kw.arg None (a ** splat) keys one entry; fine for a label union
        receiver = (
            self._labels(call.func.value, env)
            if isinstance(call.func, ast.Attribute)
            else _EMPTY
        )
        name = self.index.callee_name(call)

        # sink check at this call site
        for expr, description in self.spec.sink_args(call, self._fn):
            self._hit_sink(call, self._labels(expr, env), description)

        if self.spec.sanitizer_call(name):
            return _EMPTY
        resolved = self.index.resolve_call(call, self._fn)
        everything = receiver
        for labels in arg_labels:
            everything |= labels
        for labels in kw_labels.values():
            everything |= labels

        if self.spec.source_call(name) and self.spec.in_source_scope(
            self._fn.module.module
        ):
            return everything | frozenset({SRC})
        if not resolved:
            return everything

        out: Labels = _EMPTY
        for callee in resolved:
            if self.spec.is_barrier_module(callee.module.module):
                continue
            summary = self.summaries.get(callee.qualname)
            if summary is None:
                continue
            bound = self._bind(call, callee, arg_labels, kw_labels, receiver)
            for label in summary.returns:
                if label == SRC:
                    out |= frozenset({SRC})
                else:
                    out |= bound.get(label, _EMPTY)
            for param, description in summary.sink_params.items():
                self._hit_sink(call, bound.get(param, _EMPTY), description)
        return out

    @staticmethod
    def _bind(
        call: ast.Call,
        callee: FunctionInfo,
        arg_labels: list[Labels],
        kw_labels: dict[str | None, Labels],
        receiver: Labels,
    ) -> dict[str, Labels]:
        """Map call-site label sets onto the callee's parameter names."""
        args = callee.node.args
        positional = [p.arg for p in args.posonlyargs + args.args]
        bound: dict[str, Labels] = {}
        index = 0
        if (
            callee.cls is not None
            and positional
            and isinstance(call.func, ast.Attribute)
        ):
            bound[positional[0]] = receiver
            positional = positional[1:]
        for labels in arg_labels:
            if index < len(positional):
                bound[positional[index]] = (
                    bound.get(positional[index], _EMPTY) | labels
                )
            elif args.vararg is not None:
                bound[args.vararg.arg] = bound.get(args.vararg.arg, _EMPTY) | labels
            index += 1
        named = set(positional) | {p.arg for p in args.kwonlyargs}
        for key, labels in kw_labels.items():
            if key is not None and key in named:
                bound[key] = bound.get(key, _EMPTY) | labels
            elif args.kwarg is not None:
                bound[args.kwarg.arg] = bound.get(args.kwarg.arg, _EMPTY) | labels
            elif key is None:
                # ``**splat`` into a function without **kwargs: smear over all
                for param in named:
                    bound[param] = bound.get(param, _EMPTY) | labels
        return bound
