"""Path-sensitive happens-before checks over handler bodies.

Both analyses here interpret a function's statement list abstractly: each
branch forks the path-state set, loops iterate to a (bounded) fixpoint,
``raise`` kills a path — a crash before the reply escapes is safe, the
journal replays or the operation never happened — and ``return`` is an
*exit event* the analysis inspects.

* :class:`ObligationAnalysis` (WP112): a durable-state mutation creates an
  obligation that must be discharged by a covering journal write
  (``self._wal*`` / ``self._stage`` / ``store.append`` /
  ``committer.stage``) before any ``return`` on every path.  Obligations
  propagate interprocedurally: a helper that mutates and returns without
  journaling passes its pending sites to the caller, and only *root*
  functions (message handlers and public methods) report what is still
  pending at their exits.  A journal/mutation statement made unreachable
  by an earlier ``return`` — the classic "reply moved above the append"
  regression — is reported too.

* :class:`TrustAnalysis` (WP113): once a function touches untrusted input
  (an envelope decode, or a raw read of a handler's payload parameter), a
  signature/validation call must dominate any durable-state mutation or
  journal write on that path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.lint.dataflow.callgraph import FunctionIndex, FunctionInfo, get_index
from repro.lint.dataflow.taint import handler_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import Program

_LOOP_PASSES = 3
_MAX_ROUNDS = 6

#: container-mutating method names (a write when called on a durable field)
MUTATOR_METHODS = frozenset(
    {"append", "pop", "setdefault", "update", "clear", "remove", "add",
     "insert", "extend", "popitem", "discard"}
)


def attr_chain(expr: ast.expr) -> list[str]:
    """Names along a Name/Attribute chain (``a.b.c`` → ``["a","b","c"]``)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _header_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The parts of a statement evaluated *at* it, excluding nested bodies.

    For compound statements only the header expression executes when control
    reaches the statement — branch/loop bodies are walked as separate
    statements, so scanning the whole subtree here would smear one branch's
    events (a ``verify`` in the mint arm, a journal call under an ``if``)
    across every path.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _calls_in_order(stmt: ast.stmt) -> list[ast.Call]:
    """Call nodes evaluated at one statement, in (approximate) order."""
    calls: list[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.stmt),
            ):
                continue
            visit(child)
        if isinstance(node, ast.Call):
            calls.append(node)

    for node in _header_nodes(stmt):
        visit(node)
    return calls


@dataclass(frozen=True)
class Site:
    path: str
    line: int
    col: int
    description: str


@dataclass(frozen=True)
class OrderingFinding:
    path: str
    line: int
    col: int
    message: str


# ---------------------------------------------------------------------------
# WP112 — journal-before-reply obligations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OrderingConfig:
    """What counts as a durable mutation and as its covering journal write."""

    scope_modules: tuple[str, ...]
    durable_fields: frozenset[str]
    durable_attrs: frozenset[str]
    journal_methods: frozenset[str]
    exempt_functions: frozenset[str]


@dataclass
class _ObligationSummary:
    leaks: frozenset[Site] = frozenset()
    always_journals: bool = False
    mutates: bool = False


class ObligationAnalysis:
    """WP112: every path from a durable mutation to a reply passes a journal."""

    def __init__(self, program: "Program", config: OrderingConfig) -> None:
        self.program = program
        self.config = config
        self.index: FunctionIndex = get_index(program)
        self.handlers = handler_names(self.index)
        self.summaries: dict[str, _ObligationSummary] = {}

    def _in_scope(self, fn: FunctionInfo) -> bool:
        return (
            fn.module.module in self.config.scope_modules
            and fn.name not in self.config.exempt_functions
        )

    def _is_root(self, fn: FunctionInfo) -> bool:
        if fn.name in self.handlers:
            return True
        return not fn.name.startswith("_")

    # -- event classification -------------------------------------------

    def _journal_call(self, call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        chain = attr_chain(func.value)
        if func.attr in self.config.journal_methods and chain[:1] == ["self"]:
            return True
        if func.attr in ("append", "append_many") and chain and chain[-1] == "store":
            return True
        if func.attr == "stage" and any("committer" in part for part in chain):
            return True
        return False

    def _mutating_call(self, call: ast.Call) -> Site | None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return None
        chain = attr_chain(func.value)
        hit = next((p for p in chain if p in self.config.durable_fields), None)
        if hit is None:
            return None
        return Site("", call.lineno, call.col_offset, f"{hit}.{func.attr}(...)")

    def _target_mutation(self, target: ast.expr) -> Site | None:
        if isinstance(target, ast.Subscript):
            chain = attr_chain(target.value)
            hit = next((p for p in chain if p in self.config.durable_fields), None)
            if hit is not None:
                return Site("", target.lineno, target.col_offset, f"{hit}[...]")
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target.value)
            if (
                target.attr in self.config.durable_attrs
                and chain[:1] != ["self"]
            ):
                return Site(
                    "", target.lineno, target.col_offset, f".{target.attr} ="
                )
        return None

    def _stmt_events(
        self, stmt: ast.stmt, fn: FunctionInfo
    ) -> list[tuple[str, object]]:
        """Ordered (kind, payload) events: ``("M", Site) | ("J", None) |
        ``("CALL", summary)`` for resolvable non-primitive callees."""
        events: list[tuple[str, object]] = []
        for call in _calls_in_order(stmt):
            if self._journal_call(call):
                events.append(("J", None))
                continue
            mutation = self._mutating_call(call)
            if mutation is not None:
                events.append(("M", mutation))
                continue
            for callee in self.index.resolve_call(call, fn):
                summary = self.summaries.get(callee.qualname)
                if summary is None:
                    continue
                # J before INHERIT: a callee that journals early and then
                # leaves new mutations pending must not have its own journal
                # write discharge the sites it leaks to us.
                if summary.always_journals:
                    events.append(("J", None))
                if summary.leaks:
                    events.append(("INHERIT", summary.leaks))
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            mutation = self._target_mutation(target)
            if mutation is not None:
                events.append(("M", mutation))
        return events

    def _stmt_has_anchor(self, stmt: ast.stmt, fn: FunctionInfo) -> bool:
        """Does this statement journal or mutate (for dead-code reporting)?"""
        return any(kind in ("M", "J") for kind, _ in self._stmt_events(stmt, fn))

    # -- path interpretation --------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> tuple[_ObligationSummary, set[int]]:
        """(summary, visited statement line numbers)."""
        self._fn = fn
        self._visited: set[int] = set()
        self._exit_states: list[tuple[frozenset[Site], bool]] = []
        final = self._exec_block(
            fn.node.body, {(frozenset(), False)}  # (pending, journaled)
        )
        for state in final:  # fall off the end: implicit return
            self._exit_states.append(state)
        leaks: set[Site] = set()
        mutated = False
        always_journals = bool(self._exit_states)
        for pending, journaled in self._exit_states:
            leaks |= pending
            if not journaled:
                always_journals = False
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.Delete, ast.Expr)):
                for kind, payload in self._stmt_events(stmt, fn):
                    if kind in ("M", "INHERIT"):
                        mutated = True
        return (
            _ObligationSummary(
                leaks=frozenset(
                    Site(fn.module.path, s.line, s.col, s.description) for s in leaks
                ),
                always_journals=always_journals,
                mutates=mutated,
            ),
            self._visited,
        )

    def _apply(
        self, events: list[tuple[str, object]], state: tuple[frozenset[Site], bool]
    ) -> tuple[frozenset[Site], bool]:
        pending, journaled = state
        for kind, payload in events:
            if kind == "J":
                pending, journaled = frozenset(), True
            elif kind == "M":
                site: Site = payload  # type: ignore[assignment]
                pending = pending | {
                    Site(self._fn.module.path, site.line, site.col, site.description)
                }
            elif kind == "INHERIT":
                pending = pending | payload  # type: ignore[operator]
        return pending, journaled

    def _exec_block(self, stmts, states):
        for stmt in stmts:
            if not states:
                return states
            states = self._exec_stmt(stmt, states)
        return states

    def _exec_stmt(self, stmt, states):
        self._visited.add(stmt.lineno)
        events = self._stmt_events(stmt, self._fn)
        states = {self._apply(events, s) for s in states}
        if isinstance(stmt, ast.Return):
            self._exit_states.extend(states)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()
        if isinstance(stmt, ast.If):
            return self._exec_block(stmt.body, set(states)) | self._exec_block(
                stmt.orelse, set(states)
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            out = set(states)
            body_states = set(states)
            for _ in range(_LOOP_PASSES):
                body_states = self._exec_block(stmt.body, body_states)
                if body_states <= out:
                    break
                out |= body_states
            return self._exec_block(stmt.orelse, out) if stmt.orelse else out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_block(stmt.body, states)
        if isinstance(stmt, ast.Try):
            after_body = self._exec_block(stmt.body, set(states))
            merged = set(after_body)
            for handler in stmt.handlers:
                merged |= self._exec_block(handler.body, states | after_body)
            if stmt.orelse:
                merged = self._exec_block(stmt.orelse, after_body) | (
                    merged - after_body
                )
            if stmt.finalbody:
                merged = self._exec_block(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, ast.Match):
            out = set()
            for case in stmt.cases:
                out |= self._exec_block(case.body, set(states))
            return out | states  # no case may match
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # approximation: loop-exit states already unioned per pass
            return set()
        return states

    # -- driver ----------------------------------------------------------

    def run(self) -> list[OrderingFinding]:
        in_scope = [fn for fn in self.index.functions if self._in_scope(fn)]
        visited_map: dict[str, set[int]] = {}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fn in in_scope:
                summary, visited = self._analyze(fn)
                visited_map[fn.qualname] = visited
                if summary != self.summaries.get(fn.qualname):
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        findings: list[OrderingFinding] = []
        for fn in in_scope:
            summary = self.summaries[fn.qualname]
            if summary.leaks and self._is_root(fn):
                for site in sorted(
                    summary.leaks, key=lambda s: (s.path, s.line, s.col)
                ):
                    findings.append(
                        OrderingFinding(
                            path=site.path,
                            line=site.line,
                            col=site.col,
                            message=(
                                f"durable mutation {site.description} can reach a "
                                f"reply in {fn.name}() without a covering journal "
                                "write (DurableStore append / GroupCommitter.stage) "
                                "on every path"
                            ),
                        )
                    )
            # statements with journal/mutation anchors that no path reaches:
            # the "reply moved above the append" regression.
            visited = visited_map.get(fn.qualname, set())
            for stmt in ast.walk(fn.node):
                if not isinstance(stmt, ast.stmt) or stmt.lineno in visited:
                    continue
                if isinstance(
                    stmt, (ast.Assign, ast.AugAssign, ast.Delete, ast.Expr)
                ) and self._stmt_has_anchor(stmt, fn):
                    findings.append(
                        OrderingFinding(
                            path=fn.module.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"journal/mutation statement in {fn.name}() is "
                                "unreachable — a reply returns before the covering "
                                "journal write"
                            ),
                        )
                    )
        return sorted(set(findings), key=lambda f: (f.path, f.line, f.message))


# ---------------------------------------------------------------------------
# WP113 — verify-before-trust
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrustConfig:
    scope_modules: tuple[str, ...]
    decode_calls: frozenset[str]
    verify_calls: frozenset[str]
    durable_fields: frozenset[str]
    durable_attrs: frozenset[str]
    journal_methods: frozenset[str]
    exempt_functions: frozenset[str]


@dataclass
class _TrustSummary:
    #: some exit state carries decoded-but-unverified envelope data
    leaks_decode: bool = False
    must_verify: bool = False
    mutates: bool = False


class TrustAnalysis:
    """WP113: untrusted envelope data must be verified before it is trusted."""

    def __init__(self, program: "Program", config: TrustConfig) -> None:
        self.program = program
        self.config = config
        self.index = get_index(program)
        self.handlers = handler_names(self.index)
        self.summaries: dict[str, _TrustSummary] = {}

    def _in_scope(self, fn: FunctionInfo) -> bool:
        return (
            fn.module.module in self.config.scope_modules
            and fn.name not in self.config.exempt_functions
        )

    def _is_verify(self, name: str | None) -> bool:
        if name is None:
            return False
        return "verify" in name or name in self.config.verify_calls

    def _untrusted_params(self, fn: FunctionInfo) -> frozenset[str]:
        if fn.name not in self.handlers:
            return frozenset()
        params = fn.param_names()
        return frozenset(params[2:])  # (self, src, payload...) by convention

    def _mutation_site(self, stmt: ast.stmt, fn: FunctionInfo) -> str | None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(target, ast.Subscript):
                chain = attr_chain(target.value)
                hit = next(
                    (p for p in chain if p in self.config.durable_fields), None
                )
                if hit is not None:
                    return f"{hit}[...]"
            elif isinstance(target, ast.Attribute):
                chain = attr_chain(target.value)
                if target.attr in self.config.durable_attrs and chain[:1] != ["self"]:
                    return f".{target.attr} ="
        return None

    def _stmt_events(self, stmt, fn, untrusted):
        """Ordered events: U (untrusted read), V (verification), M (trust sink)."""
        events: list[tuple[str, object]] = []
        for header in _header_nodes(stmt):
            for node in ast.walk(header):
                if isinstance(node, ast.Subscript) and isinstance(
                    node.value, ast.Name
                ):
                    if node.value.id in untrusted:
                        events.append(("U", node))
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in untrusted
                ):
                    events.append(("U", node))
        for call in _calls_in_order(stmt):
            name = self.index.callee_name(call)
            if name in self.config.decode_calls:
                events.append(("U", call))
            elif self._is_verify(name):
                events.append(("V", call))
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self.config.journal_methods
                and attr_chain(call.func.value)[:1] == ["self"]
            ):
                events.append(("M", (call, f"self.{call.func.attr}(...)")))
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS
            ):
                chain = attr_chain(call.func.value)
                hit = next(
                    (p for p in chain if p in self.config.durable_fields), None
                )
                if hit is not None:
                    events.append(("M", (call, f"{hit}.{call.func.attr}(...)")))
            else:
                for callee in self.index.resolve_call(call, fn):
                    summary = self.summaries.get(callee.qualname)
                    if summary is None:
                        continue
                    # U, V, M: a callee counts as an untrusted read only
                    # when some path returns decoded-but-unverified data —
                    # a callee that verifies at its own trust boundary
                    # launders the decode (its body is checked separately).
                    if summary.leaks_decode:
                        events.append(("U", call))
                    if summary.must_verify:
                        events.append(("V", call))
                    if summary.mutates:
                        events.append(("M", (call, f"{callee.name}(...)")))
        description = self._mutation_site(stmt, fn)
        if description is not None:
            events.append(("M", (stmt, description)))
        return events

    def _apply(self, events, state, findings):
        decoded, verified = state
        for kind, payload in events:
            if kind == "U":
                decoded = True
            elif kind == "V":
                verified = True
            elif kind == "M":
                node, description = payload  # type: ignore[misc]
                if decoded and not verified and findings is not None:
                    findings.append(
                        OrderingFinding(
                            path=self._fn.module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"state mutation {description} in {self._fn.name}() "
                                "uses envelope data with no dominating "
                                "signature/validation check on this path"
                            ),
                        )
                    )
        return decoded, verified

    def _exec_block(self, stmts, states, findings):
        for stmt in stmts:
            if not states:
                return states
            states = self._exec_stmt(stmt, states, findings)
        return states

    def _exec_stmt(self, stmt, states, findings):
        events = self._stmt_events(stmt, self._fn, self._untrusted)
        states = {self._apply(events, s, findings) for s in states}
        if isinstance(stmt, ast.Return):
            self._exit_states.extend(states)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()
        if isinstance(stmt, ast.If):
            return self._exec_block(stmt.body, set(states), findings) | (
                self._exec_block(stmt.orelse, set(states), findings)
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            out = set(states)
            body_states = set(states)
            for _ in range(_LOOP_PASSES):
                body_states = self._exec_block(stmt.body, body_states, findings)
                if body_states <= out:
                    break
                out |= body_states
            return self._exec_block(stmt.orelse, out, findings) if stmt.orelse else out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_block(stmt.body, states, findings)
        if isinstance(stmt, ast.Try):
            after_body = self._exec_block(stmt.body, set(states), findings)
            merged = set(after_body)
            for handler in stmt.handlers:
                merged |= self._exec_block(handler.body, states | after_body, findings)
            if stmt.orelse:
                merged = self._exec_block(stmt.orelse, after_body, findings) | (
                    merged - after_body
                )
            if stmt.finalbody:
                merged = self._exec_block(stmt.finalbody, merged, findings)
            return merged
        if isinstance(stmt, ast.Match):
            out = set()
            for case in stmt.cases:
                out |= self._exec_block(case.body, set(states), findings)
            return out | states
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return set()
        return states

    def _analyze(self, fn, findings):
        self._fn = fn
        self._untrusted = self._untrusted_params(fn)
        self._exit_states: list[tuple[bool, bool]] = []
        final = self._exec_block(fn.node.body, {(False, False)}, findings)
        self._exit_states.extend(final)
        leaks_decode = any(
            decoded and not verified for decoded, verified in self._exit_states
        )
        must_verify = bool(self._exit_states) and all(
            verified for _, verified in self._exit_states
        )
        mutates = False
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.stmt):
                if self._mutation_site(stmt, fn) is not None:
                    mutates = True
                    break
        return _TrustSummary(
            leaks_decode=leaks_decode, must_verify=must_verify, mutates=mutates
        )

    def run(self) -> list[OrderingFinding]:
        in_scope = [fn for fn in self.index.functions if self._in_scope(fn)]
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fn in in_scope:
                summary = self._analyze(fn, findings=None)
                if summary != self.summaries.get(fn.qualname):
                    self.summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        findings: list[OrderingFinding] = []
        for fn in in_scope:
            self._analyze(fn, findings)
        return sorted(set(findings), key=lambda f: (f.path, f.line, f.message))
