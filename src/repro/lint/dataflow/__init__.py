"""Whole-program dataflow analysis for the lint engine.

Three layers, each built on the previous:

* :mod:`repro.lint.dataflow.callgraph` — a module-level function index and
  call resolver (``self.method`` through the class hierarchy, imported
  names via :mod:`repro.lint.resolve`, unique program-wide method names),
  memoized per :class:`~repro.lint.engine.Program`.
* :mod:`repro.lint.dataflow.taint` — forward may-taint over a small
  source/sanitizer/sink lattice with per-function summaries (labels are
  ``SRC`` plus parameter names), iterated to a fixpoint so propagation is
  interprocedural.  WP110 (anonymity) and WP111 (secret egress) are specs
  over this engine.
* :mod:`repro.lint.dataflow.ordering` — a path-sensitive abstract
  interpreter over statement lists (branches fork, loops iterate to a
  fixpoint, ``raise`` kills the path) used for happens-before rules:
  WP112 (journal-before-reply) and WP113 (verify-before-trust).

All three are pure ``ast`` walkers: no imports of the analyzed code, no
execution, stdlib only.
"""

from repro.lint.dataflow.callgraph import FunctionIndex, get_index  # noqa: F401
