"""Command-line entry point: ``python -m repro.lint [paths] --format text|json``.

Exit codes: 0 — clean (every finding baselined or suppressed); 1 — at
least one new finding; 2 — usage or I/O error.

Defaults (paths, baseline location) can be set once in ``pyproject.toml``::

    [tool.wp-lint]
    paths = ["src"]
    baseline = "lint-baseline.json"

so CI, pre-commit hooks, and developers all run the same invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Sequence

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.registry import get_rules

try:  # pragma: no cover - tomllib ships with 3.11+
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

DEFAULT_BASELINE = "lint-baseline.json"


def _load_config(start_dir: str) -> dict[str, Any]:
    """``[tool.wp-lint]`` from the nearest pyproject.toml at/above start_dir."""
    if tomllib is None:
        return {}
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            try:
                with open(candidate, "rb") as fh:
                    data = tomllib.load(fh)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            section = data.get("tool", {}).get("wp-lint", {})
            return section if isinstance(section, dict) else {}
        parent = os.path.dirname(current)
        if parent == current:
            return {}
        current = parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="WhoPay invariant checker (rules WP101-WP105).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.wp-lint] paths, else src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        help=f"baseline file (default: [tool.wp-lint] baseline, else {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding counts",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.code}  {rule.name} [{rule.scope}]")
            print(f"       {rule.rationale}")
        return 0

    config = _load_config(os.getcwd())
    paths = list(args.paths) or list(config.get("paths", [])) or ["src"]
    baseline_path = args.baseline or config.get("baseline") or DEFAULT_BASELINE

    try:
        result = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(baseline_path, result.findings)
        print(f"wrote {count} entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    baseline: dict[str, Any] = {}
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, grandfathered, stale = split_baselined(result.findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "checked_files": result.checked_files,
                    "suppressed": result.suppressed,
                    "baselined": [diag.to_json() for diag in grandfathered],
                    "stale_baseline_entries": stale,
                    "findings": [diag.to_json() for diag in new],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for diag in new:
            print(diag.format_text())
        for entry in stale:
            print(
                f"note: stale baseline entry {entry['fingerprint']} "
                f"({entry.get('code', '?')} in {entry.get('path', '?')}) — "
                "the finding is gone; remove the entry"
            )
        summary = (
            f"{len(new)} finding(s), {len(grandfathered)} baselined, "
            f"{result.suppressed} suppressed across {result.checked_files} file(s)"
        )
        print(("FAIL: " if new else "ok: ") + summary)

    return 1 if new else 0
