"""Command-line entry point: ``python -m repro.lint [paths] --format text|json|sarif``.

Exit codes: 0 — clean (every finding baselined, exempted, or suppressed);
1 — at least one new finding; 2 — usage or I/O error.

Defaults (paths, baseline location, per-path rule exemptions) are set once
in ``pyproject.toml`` so CI, pre-commit hooks, and developers all run the
same invocation::

    [tool.wp-lint]
    paths = ["src", "benchmarks", "examples"]
    baseline = "lint-baseline.json"

    [tool.wp-lint.exempt]
    # path prefix -> rule codes that do not apply under it
    "benchmarks/bench_crypto_ops.py" = ["WP103"]

Repeat runs reuse a content-hash cache (``.wp-lint-cache.json``): an
unchanged tree replays the previous result without parsing anything, and a
partially-changed tree re-runs file-scoped rules only for changed files.
``--no-cache`` forces a cold run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Sequence

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.cache import DEFAULT_CACHE_PATH, LintCache, lint_paths_cached
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import get_rules
from repro.lint.sarif import to_sarif

try:  # pragma: no cover - tomllib ships with 3.11+
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

DEFAULT_BASELINE = "lint-baseline.json"


def _load_config(start_dir: str) -> dict[str, Any]:
    """``[tool.wp-lint]`` from the nearest pyproject.toml at/above start_dir."""
    if tomllib is None:
        return {}
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            try:
                with open(candidate, "rb") as fh:
                    data = tomllib.load(fh)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            section = data.get("tool", {}).get("wp-lint", {})
            return section if isinstance(section, dict) else {}
        parent = os.path.dirname(current)
        if parent == current:
            return {}
        current = parent


def _exemption_map(config: dict[str, Any]) -> dict[str, frozenset[str]]:
    """Normalized ``[tool.wp-lint.exempt]``: path prefix -> exempt codes."""
    raw = config.get("exempt", {})
    if not isinstance(raw, dict):
        return {}
    exempt: dict[str, frozenset[str]] = {}
    for prefix, codes in raw.items():
        if isinstance(prefix, str) and isinstance(codes, (list, tuple)):
            normal = os.path.normpath(prefix).replace(os.sep, "/")
            exempt[normal] = frozenset(str(code) for code in codes)
    return exempt


def split_exempt(
    findings: Sequence[Diagnostic], exempt: dict[str, frozenset[str]]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Partition findings into (kept, exempted) by the per-path map."""
    if not exempt:
        return list(findings), []
    kept: list[Diagnostic] = []
    dropped: list[Diagnostic] = []
    for diag in findings:
        path = os.path.normpath(diag.path).replace(os.sep, "/")
        hit = any(
            diag.code in codes
            and (path == prefix or path.startswith(prefix.rstrip("/") + "/"))
            for prefix, codes in exempt.items()
        )
        (dropped if hit else kept).append(diag)
    return kept, dropped


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="WhoPay invariant checker (rules WP101-WP113).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.wp-lint] paths, else src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        help=f"baseline file (default: [tool.wp-lint] baseline, else {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding counts",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache; lint everything cold",
    )
    parser.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE_PATH,
        help=f"cache file location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.code}  {rule.name} [{rule.scope}]")
            print(f"       {rule.rationale}")
        return 0

    config = _load_config(os.getcwd())
    paths = list(args.paths) or list(config.get("paths", [])) or ["src"]
    baseline_path = args.baseline or config.get("baseline") or DEFAULT_BASELINE
    exempt = _exemption_map(config)

    cache = None if args.no_cache else LintCache.load(args.cache_file)
    try:
        result, cache_status = lint_paths_cached(paths, cache)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings, exempted = split_exempt(result.findings, exempt)

    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"wrote {count} entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    baseline: dict[str, Any] = {}
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, grandfathered, stale = split_baselined(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "checked_files": result.checked_files,
                    "suppressed": result.suppressed,
                    "exempted": [diag.to_json() for diag in exempted],
                    "cache": cache_status,
                    "baselined": [diag.to_json() for diag in grandfathered],
                    "stale_baseline_entries": stale,
                    "findings": [diag.to_json() for diag in new],
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(to_sarif(new), indent=2, sort_keys=True))
    else:
        for diag in new:
            print(diag.format_text())
        for entry in stale:
            print(
                f"note: stale baseline entry {entry['fingerprint']} "
                f"({entry.get('code', '?')} in {entry.get('path', '?')}) — "
                "the finding is gone; remove the entry"
            )
        summary = (
            f"{len(new)} finding(s), {len(grandfathered)} baselined, "
            f"{result.suppressed} suppressed, {len(exempted)} exempted "
            f"across {result.checked_files} file(s) [cache: {cache_status}]"
        )
        print(("FAIL: " if new else "ok: ") + summary)

    return 1 if new else 0
