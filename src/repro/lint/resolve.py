"""Cross-module constant resolution for whole-program rules.

The wire-schema rule needs to know, for an expression like
``protocol.PURCHASE`` or a bare ``ASSIGN``, which *string* actually crosses
the transport.  Within this codebase message kinds are always module-level
string constants referenced directly, via ``from pkg import mod`` aliases,
via ``from mod import NAME`` (possibly re-exported through a package
``__init__``), or via dotted module paths (``pkg.mod.NAME``) — so a small,
honest resolver over the analyzed file set covers every real call site.
Anything dynamic (a kind pulled out of a payload dict) resolves to ``None``
and is skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import ModuleInfo, Program


@dataclass
class ModuleSymbols:
    """What one module contributes to / imports from the constant namespace."""

    #: module-level ``NAME = "literal"`` string assignments
    constants: dict[str, str] = field(default_factory=dict)
    #: local alias → dotted module it refers to (``from a.b import c`` → c=a.b.c)
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name → (defining module, original name) from ``from m import N``
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: root names bound by plain ``import a.b`` (binds ``a``; ``a.b.N`` works)
    plain_import_roots: set[str] = field(default_factory=set)


def collect_symbols(tree: ast.Module) -> ModuleSymbols:
    """Scan one module's top level for constants and import bindings."""
    symbols = ModuleSymbols()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        symbols.constants[target.id] = stmt.value.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                symbols.constants[stmt.target.id] = stmt.value.value
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    # ``import a.b.c as x`` binds x to a.b.c.
                    symbols.module_aliases[alias.asname] = alias.name
                else:
                    # Plain ``import a.b`` binds only ``a``; constants are then
                    # reachable through the full dotted path ``a.b.NAME``.
                    symbols.plain_import_roots.add(alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                continue  # relative imports are not used in this codebase
            for alias in stmt.names:
                local = alias.asname or alias.name
                # ``from a.b import c`` may bind a submodule *or* a name;
                # record both readings and let lookup pick whichever exists.
                symbols.module_aliases[local] = f"{stmt.module}.{alias.name}"
                symbols.imported_names[local] = (stmt.module, alias.name)
    return symbols


def dotted_prefix(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ConstantResolver:
    """Resolves kind expressions to strings across the analyzed file set."""

    def __init__(self, program: "Program") -> None:
        self._symbols: dict[str, ModuleSymbols] = {
            info.module: collect_symbols(info.tree) for info in program.modules
        }

    def _constant_in(
        self, module: str, name: str, _seen: set[tuple[str, str]] | None = None
    ) -> str | None:
        """Look up ``name`` in ``module``, following re-export chains.

        ``from a import K`` in module ``c`` makes ``c.K`` resolve through to
        ``a.K`` (transitively, with a cycle guard) — package ``__init__``
        re-exports are how most protocol constants are actually reached.
        """
        symbols = self._symbols.get(module)
        if symbols is None:
            return None
        value = symbols.constants.get(name)
        if value is not None:
            return value
        origin = symbols.imported_names.get(name)
        if origin is None:
            return None
        key = (module, name)
        seen = _seen if _seen is not None else set()
        if key in seen:
            return None
        seen.add(key)
        return self._constant_in(origin[0], origin[1], seen)

    def _module_for_prefix(self, prefix: str, symbols: ModuleSymbols) -> str | None:
        """The analyzed module a dotted receiver chain refers to, if any."""
        head, _, rest = prefix.partition(".")
        alias = symbols.module_aliases.get(head)
        if alias is not None:
            candidate = f"{alias}.{rest}" if rest else alias
            if candidate in self._symbols:
                return candidate
        if head in symbols.plain_import_roots and prefix in self._symbols:
            return prefix
        return None

    def resolve(self, expr: ast.expr, module: "ModuleInfo") -> str | None:
        """The string ``expr`` evaluates to, or ``None`` if not static."""
        if isinstance(expr, ast.Constant):
            return expr.value if isinstance(expr.value, str) else None
        symbols = self._symbols.get(module.module)
        if symbols is None:
            return None
        if isinstance(expr, ast.Name):
            return self._constant_in(module.module, expr.id)
        if isinstance(expr, ast.Attribute):
            prefix = dotted_prefix(expr.value)
            if prefix is not None:
                target = self._module_for_prefix(prefix, symbols)
                if target is not None:
                    return self._constant_in(target, expr.attr)
        return None
