"""Cross-module constant resolution for whole-program rules.

The wire-schema rule needs to know, for an expression like
``protocol.PURCHASE`` or a bare ``ASSIGN``, which *string* actually crosses
the transport.  Within this codebase message kinds are always module-level
string constants referenced directly, via ``from pkg import mod`` aliases,
or via ``from mod import NAME`` — so a small, honest resolver over the
analyzed file set covers every real call site.  Anything dynamic (a kind
pulled out of a payload dict) resolves to ``None`` and is skipped rather
than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import ModuleInfo, Program


@dataclass
class ModuleSymbols:
    """What one module contributes to / imports from the constant namespace."""

    #: module-level ``NAME = "literal"`` string assignments
    constants: dict[str, str] = field(default_factory=dict)
    #: local alias → dotted module it refers to (``from a.b import c`` → c=a.b.c)
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name → (defining module, original name) from ``from m import N``
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)


def collect_symbols(tree: ast.Module) -> ModuleSymbols:
    """Scan one module's top level for constants and import bindings."""
    symbols = ModuleSymbols()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        symbols.constants[target.id] = stmt.value.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                symbols.constants[stmt.target.id] = stmt.value.value
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                # ``import a.b.c as x`` binds x to a.b.c; plain ``import a.b``
                # binds only ``a``, which never names a constant table here.
                if alias.asname is not None:
                    symbols.module_aliases[local] = alias.name
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                continue  # relative imports are not used in this codebase
            for alias in stmt.names:
                local = alias.asname or alias.name
                # ``from a.b import c`` may bind a submodule *or* a name;
                # record both readings and let lookup pick whichever exists.
                symbols.module_aliases[local] = f"{stmt.module}.{alias.name}"
                symbols.imported_names[local] = (stmt.module, alias.name)
    return symbols


class ConstantResolver:
    """Resolves kind expressions to strings across the analyzed file set."""

    def __init__(self, program: "Program") -> None:
        self._symbols: dict[str, ModuleSymbols] = {
            info.module: collect_symbols(info.tree) for info in program.modules
        }

    def _constant_in(self, module: str, name: str) -> str | None:
        symbols = self._symbols.get(module)
        return None if symbols is None else symbols.constants.get(name)

    def resolve(self, expr: ast.expr, module: "ModuleInfo") -> str | None:
        """The string ``expr`` evaluates to, or ``None`` if not static."""
        if isinstance(expr, ast.Constant):
            return expr.value if isinstance(expr.value, str) else None
        symbols = self._symbols.get(module.module)
        if symbols is None:
            return None
        if isinstance(expr, ast.Name):
            local = symbols.constants.get(expr.id)
            if local is not None:
                return local
            origin = symbols.imported_names.get(expr.id)
            if origin is not None:
                return self._constant_in(*origin)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            target = symbols.module_aliases.get(expr.value.id)
            if target is not None:
                return self._constant_in(target, expr.attr)
        return None
