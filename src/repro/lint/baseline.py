"""Committed baseline of grandfathered findings.

The baseline is the escape hatch for debt that predates a rule: findings
whose fingerprints appear in it don't fail the build, but they stay visible
in the summary so the debt can't silently grow.  Every entry must carry a
``justification`` — the file format makes "why is this allowed?" a required
field, since JSON has no comments.

Fingerprints exclude line numbers (see
:class:`~repro.lint.diagnostics.Diagnostic`), so entries survive unrelated
edits; an entry whose finding disappears shows up as *stale* and should be
deleted.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1
DEFAULT_JUSTIFICATION = "TODO: justify this grandfathered finding"


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: str) -> dict[str, dict[str, Any]]:
    """Fingerprint → entry map; a missing file is an empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(f"baseline {path!r}: unsupported format/version")
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path!r}: 'entries' must be a list")
    table: dict[str, dict[str, Any]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(f"baseline {path!r}: malformed entry {entry!r}")
        table[entry["fingerprint"]] = entry
    return table


def write_baseline(
    path: str,
    diagnostics: Sequence[Diagnostic],
    justification: str = DEFAULT_JUSTIFICATION,
) -> int:
    """Write a fresh baseline covering ``diagnostics``; returns entry count."""
    entries = []
    for diag in sorted(set(diagnostics)):
        entry = diag.to_json()
        del entry["line"], entry["col"]  # fingerprints are line-independent
        entry["justification"] = justification
        entries.append(entry)
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def split_baselined(
    diagnostics: Sequence[Diagnostic], baseline: dict[str, dict[str, Any]]
) -> tuple[list[Diagnostic], list[Diagnostic], list[dict[str, Any]]]:
    """Partition findings into ``(new, grandfathered, stale_entries)``.

    ``stale_entries`` are baseline entries no current finding matches —
    fixed debt whose entry should now be removed from the file.
    """
    seen: set[str] = set()
    new: list[Diagnostic] = []
    grandfathered: list[Diagnostic] = []
    for diag in diagnostics:
        if diag.fingerprint in baseline:
            seen.add(diag.fingerprint)
            grandfathered.append(diag)
        else:
            new.append(diag)
    stale = [entry for fp, entry in sorted(baseline.items()) if fp not in seen]
    return new, grandfathered, stale
