"""Diagnostic records: what a rule found, where, and its stable identity.

A diagnostic's *fingerprint* deliberately excludes the line number: baseline
entries must survive unrelated edits that shift code up or down, and two
findings with the same code, file, and message are the same grandfathered
debt wherever they land in the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        raw = f"{self.code}|{self.path}|{self.message}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def format_text(self) -> str:
        """The classic compiler-style one-liner (clickable in editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict (used by ``--format json`` and the baseline)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_json(cls, entry: dict[str, Any]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_json` output (cache reload)."""
        return cls(
            path=str(entry["path"]),
            line=int(entry["line"]),
            col=int(entry["col"]),
            code=str(entry["code"]),
            message=str(entry["message"]),
        )
