"""WP107 — simulator randomness must be explicitly seeded.

The simulation engines promise bit-identical replays per ``SimConfig.seed``
(`repro.sim.engine` stakes its equivalence gate on it), and the sweep
runner promises parallel rows identical to sequential ones.  numpy's
random API offers two ways to silently break that promise inside
``repro.sim``:

* the *module-level* generator — ``np.random.normal(...)``,
  ``np.random.seed(...)`` and friends share one hidden global stream that
  any import can perturb;
* *unseeded constructors* — ``default_rng()`` / ``RandomState()`` with no
  argument (or an explicit ``None``) pull entropy from the OS, so no two
  runs agree.

Both are reported.  The sanctioned forms are seeded constructors —
``default_rng(config.seed)``, ``RandomState(0)`` (e.g. as a state-transplant
shell for an MT19937 stream) — and stdlib ``random.Random(seed)``
instances; WP102 already polices the stdlib global generator.

Scope: ``repro.sim`` only.  Offline tooling that merely *analyzes* sim
output (``repro.analysis``) may bootstrap-resample however it likes.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import in_package
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

#: Constructors that draw an OS-entropy seed when called without one.
SEEDABLE_CTORS = frozenset({"default_rng", "RandomState"})


def _unseeded(node: ast.Call) -> bool:
    """True when the call passes no seed (no args, or an explicit None)."""
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
    else:
        seed_kw = next((kw for kw in node.keywords if kw.arg == "seed"), None)
        if seed_kw is None:
            return True
        first = seed_kw.value
    return isinstance(first, ast.Constant) and first.value is None


@register
class SimSeedingDiscipline(Rule):
    code = "WP107"
    name = "sim-seeding-discipline"
    rationale = (
        "The simulator's per-seed reproducibility gate dies the moment "
        "repro.sim touches numpy's global random stream or an unseeded "
        "generator."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if not in_package(module.module, ("repro.sim",)):
            return
        numpy_aliases: set[str] = set()  # import numpy as np  ->  {"np"}
        random_aliases: set[str] = set()  # from numpy import random as r / np.random
        ctor_aliases: set[str] = set()  # from numpy.random import default_rng
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        # ``import numpy.random`` binds the root module name.
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in SEEDABLE_CTORS:
                            ctor_aliases.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            diag = self._check_call(module, node, numpy_aliases, random_aliases, ctor_aliases)
            if diag is not None:
                yield diag

    def _check_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        numpy_aliases: set[str],
        random_aliases: set[str],
        ctor_aliases: set[str],
    ) -> Diagnostic | None:
        func = node.func
        if isinstance(func, ast.Name):
            # from numpy.random import default_rng; default_rng()
            if func.id in ctor_aliases and _unseeded(node):
                return self._diag(
                    module,
                    node,
                    f"{func.id}() without a seed draws OS entropy — pass "
                    "the config's seed so runs replay bit-identically",
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        # <np>.random.<fn>() or <random_alias>.<fn>()
        is_random_ns = (
            isinstance(receiver, ast.Attribute)
            and receiver.attr == "random"
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in numpy_aliases
        ) or (isinstance(receiver, ast.Name) and receiver.id in random_aliases)
        if not is_random_ns:
            return None
        if func.attr in SEEDABLE_CTORS:
            if _unseeded(node):
                return self._diag(
                    module,
                    node,
                    f"{func.attr}() without a seed draws OS entropy — pass "
                    "the config's seed so runs replay bit-identically",
                )
            return None
        # Any other attribute call on the numpy.random namespace hits the
        # hidden module-level generator (including ``seed`` itself, which
        # mutates state shared across every consumer in the process).
        return self._diag(
            module,
            node,
            f"numpy.random.{func.attr}() uses the hidden global stream — "
            "draw from a generator seeded with the config's seed",
        )

    def _diag(self, module: ModuleInfo, node: ast.Call, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            code=self.code,
            message=message,
        )
