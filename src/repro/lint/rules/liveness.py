"""WP114 — liveness discipline: every RPC bounded, no real-time sleeps.

PR 9 gives :meth:`~repro.net.rpc.RpcClient.call` a ``deadline`` — a total
virtual-time budget covering latency, fault jitter, and retry backoff.  An
unbounded call is a liveness hazard: one jittered hop can stall a payment,
a heartbeat, or a handoff indefinitely, and the failure detector cannot
bound detection latency for work it cannot bound.  Two hazard classes:

* RPC-client ``.call`` sites (receivers ``rpc`` / ``_rpc`` /
  ``_shard_rpc``) that pass no ``deadline=`` keyword — protocol code must
  always state its budget, even a generous one;
* real-time sleeps (``time.sleep(...)`` or a ``from time import sleep``)
  anywhere in protocol code — all waiting flows from the virtual
  :class:`~repro.core.clock.Clock`, and backoff delays are *accounted*
  (added to ``virtual_latency_accrued``), never slept.

Scope: every package under ``repro`` except ``repro.net`` itself (the
transport/RPC layer implements the budget machinery, and its seeded-backoff
helpers are the sanctioned accounting form) and the offline tooling
packages (``repro.analysis``, ``repro.cli``, ``repro.lint``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import in_package, receiver_attr
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

EXEMPT_PACKAGES = ("repro.net", "repro.analysis", "repro.cli", "repro.lint")

#: RPC-client receivers whose ``.call`` takes the ``deadline`` keyword.
_RPC_RECEIVERS = frozenset({"rpc", "_rpc", "_shard_rpc"})


@register
class LivenessDiscipline(Rule):
    code = "WP114"
    name = "liveness-discipline"
    rationale = (
        "An RPC without a deadline or a real-time sleep in protocol code "
        "is an unbounded wait the failure detector cannot reason about."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if not module.module.startswith("repro"):
            return
        if in_package(module.module, EXEMPT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterable[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "call" and receiver_attr(func.value) in _RPC_RECEIVERS:
            if not any(kw.arg == "deadline" for kw in node.keywords):
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "RpcClient.call without a deadline= budget — an "
                        "unbounded RPC stalls liveness; state the virtual-time "
                        "budget (a module constant) even if generous"
                    ),
                )
        elif (
            func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            yield Diagnostic(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                code=self.code,
                message=(
                    "time.sleep() in protocol code — waiting flows from the "
                    "virtual Clock; backoff is accounted, never slept"
                ),
            )

    def _check_import(self, module: ModuleInfo, node: ast.ImportFrom) -> Iterable[Diagnostic]:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name == "sleep":
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "importing sleep from time in protocol code — waiting "
                        "flows from the virtual Clock"
                    ),
                )
