"""WP106/WP108 — durable broker state must flow through the journal API.

The broker's durable fields (``accounts``, ``valid_coins``, ``deposited``,
``downtime_bindings``, ``owner_coins``, ``pending_sync``, and the
federation pair ``pending_handoffs``/``handoffs_seen``)
are crash-consistent only because every mutation is described by a record
and applied via :mod:`repro.store.apply` *after* being staged for the
write-ahead journal.  A direct assignment — ``self.deposited[y] = data``
in a handler — would change in-memory state without a journal record, so
a crash and recovery silently forgets it: the exact torn-state bug the
durability layer exists to prevent.

Only the mutation layer itself (:mod:`repro.store`), the snapshot
serializer (:mod:`repro.core.persistence`), and the non-durable baseline
implementations (:mod:`repro.baselines`) may touch these fields directly.
Reads are always fine; so is constructing the fields in ``__init__``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import dotted_name, in_package
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

EXEMPT_PACKAGES = ("repro.store", "repro.core.persistence", "repro.baselines")

#: The broker fields the write-ahead journal makes crash-consistent.
DURABLE_FIELDS = frozenset(
    {
        "accounts",
        "valid_coins",
        "deposited",
        "downtime_bindings",
        "owner_coins",
        "pending_sync",
        # Federation (PR 7): exactly-once cross-shard handoff state.
        "pending_handoffs",
        "handoffs_seen",
    }
)

#: Methods that mutate a dict/set in place.
MUTATOR_METHODS = frozenset(
    {
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "add",
        "discard",
        "remove",
        "append",
        "extend",
    }
)


def _durable_field_in_chain(node: ast.AST) -> str | None:
    """The durable field a receiver chain dereferences, if any.

    Walks ``x.pending_sync.setdefault(...).add`` style chains through
    attributes, calls, and subscripts down to the root.
    """
    while True:
        if isinstance(node, ast.Attribute):
            if node.attr in DURABLE_FIELDS:
                return node.attr
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return None


def _init_node_ids(tree: ast.AST) -> set[int]:
    """ids of every node inside an ``__init__`` body (construction is fine)."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            for child in ast.walk(node):
                ids.add(id(child))
    return ids


@register
class DurableFieldDiscipline(Rule):
    code = "WP106"
    name = "journal-api-discipline"
    rationale = (
        "Direct mutation of durable broker fields bypasses the write-ahead "
        "journal; the change evaporates on crash recovery (PR 4 invariant)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if in_package(module.module, EXEMPT_PACKAGES):
            return
        init_ids = _init_node_ids(module.tree)
        seen: set[tuple[int, str]] = set()

        def diag(node: ast.AST, field: str, what: str) -> Diagnostic | None:
            if (node.lineno, field) in seen:
                return None
            seen.add((node.lineno, field))
            return Diagnostic(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                code=self.code,
                message=(
                    f"{what} of durable field {field!r} outside repro.store — "
                    "stage a mutation record through the journal API "
                    "(Broker._stage / repro.store.apply) instead"
                ),
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        field = _durable_field_in_chain(target.value)
                        if field is not None:
                            found = diag(node, field, "item assignment/deletion")
                            if found:
                                yield found
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr in DURABLE_FIELDS
                        and id(node) not in init_ids
                    ):
                        found = diag(node, target.attr, "rebinding")
                        if found:
                            yield found
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in MUTATOR_METHODS:
                    continue
                field = _durable_field_in_chain(node.func.value)
                if field is not None:
                    found = diag(node, field, f"in-place {node.func.attr}()")
                    if found:
                        yield found


#: Only the journal layer itself may issue raw fsync/fdatasync calls.
FSYNC_EXEMPT_PACKAGES = ("repro.store",)

#: The os-module durability primitives WP108 fences off.
FSYNC_FNS = frozenset({"fsync", "fdatasync"})


@register
class FsyncDiscipline(Rule):
    code = "WP108"
    name = "fsync-through-journal"
    rationale = (
        "A raw os.fsync outside repro.store bypasses the journal's "
        "group-commit accounting: which mutations a given fsync covers — "
        "and therefore when a reply may be released — is decided by the "
        "store layer, and a side-channel sync silently breaks that ledger."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if in_package(module.module, FSYNC_EXEMPT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.startswith("os.") and name[3:] in FSYNC_FNS:
                    yield self._diag(module, node, f"{name}()")
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in FSYNC_FNS:
                        yield self._diag(
                            module, node, f"from os import {alias.name}"
                        )

    def _diag(self, module: ModuleInfo, node: ast.AST, what: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            code=self.code,
            message=(
                f"{what} outside repro.store — durability flows through the "
                "journal (DurableStore.append/append_many or a GroupCommitter); "
                "a raw sync is invisible to group-commit reply gating"
            ),
        )
