"""WP104 — exception discipline: no bare except, no swallowed protocol errors.

A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and every
programming error in the handler's scope — in a payment protocol that can
convert a crash into silent value loss.  Separately, catching
``ProtocolError``/``NetworkError`` (or their structured kin) and doing
*nothing* hides exactly the failures the conservation audits and chaos
suite exist to surface; a handler must recover, degrade, re-raise, or at
minimum record the failure.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import body_is_silent, exception_names
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

#: Protocol-failure classes that must never be caught-and-ignored.
PROTOCOL_ERROR_NAMES = frozenset(
    {"ProtocolError", "NetworkError", "ServiceUnavailable", "VerificationFailed"}
)


@register
class ExceptionDiscipline(Rule):
    code = "WP104"
    name = "exception-discipline"
    rationale = (
        "Bare except masks crashes as protocol outcomes; a silently "
        "swallowed ProtocolError/NetworkError hides the failures the "
        "conservation audits exist to catch."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "bare 'except:' — name the exceptions this handler "
                        "can actually recover from"
                    ),
                )
                continue
            caught = exception_names(node.type) & PROTOCOL_ERROR_NAMES
            if caught and body_is_silent(node.body):
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        f"silently swallowed {'/'.join(sorted(caught))} — "
                        "recover, degrade, re-raise, or record the failure"
                    ),
                )
