"""WP110 — anonymity taint (whole-program).

WhoPay's headline property: the broker (and any wire observer) must not be
able to link a coin to the peer holding it.  Holder-side messages travel
in the dual-signed envelope ``{{M}_skC}_gk`` — coin key plus group
signature, never the identity key — so a peer-identifying value
(``self.address``, ``self.identity``) flowing into the *anonymous channel*
(``group_seal`` payloads, ``HolderOperation`` fields,
``Peer._holder_envelope`` arguments) breaks the guarantee the paper is
named for.

Sanctioned declassification points: the blinding constructors in
``repro.crypto.blind`` and the pseudonym/voucher constructors in
``repro.anonymity`` — flows through those are deliberate, reviewed
linkage (e.g. a funding voucher that names the debited account *inside*
an identity-signed blob the broker must verify anyway).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.dataflow.callgraph import FunctionInfo
from repro.lint.dataflow.taint import TaintAnalysis, TaintSpec
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Program
from repro.lint.registry import Rule, register

_SCOPE = ("repro.core.peer", "repro.core.anonymous_owner", "repro.core.coinshop")
_SANCTIONED = frozenset(
    {"blind", "unblind", "funding_voucher", "bearer_account", "pseudonym"}
)
_IDENTIFYING_ATTRS = frozenset({"address", "identity"})


class AnonymityTaintSpec(TaintSpec):
    code = "WP110"

    def in_source_scope(self, module: str) -> bool:
        return module in _SCOPE

    def is_barrier_module(self, module: str) -> bool:
        return module.startswith("repro.crypto") or module.startswith("repro.anonymity")

    def is_source(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr in _IDENTIFYING_ATTRS
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        )

    def sanitizer_call(self, name: str | None) -> bool:
        return name is not None and name in _SANCTIONED

    def sink_args(
        self, call: ast.Call, fn: FunctionInfo
    ) -> list[tuple[ast.expr, str]]:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        sinks: list[tuple[ast.expr, str]] = []
        if name == "group_seal":
            for index, arg in enumerate(call.args):
                if index >= 3:
                    sinks.append((arg, "group_seal payload"))
            for kw in call.keywords:
                if kw.arg == "payload":
                    sinks.append((kw.value, "group_seal payload"))
        elif name == "_holder_envelope":
            for arg in call.args[2:]:
                sinks.append((arg, "holder-envelope field"))
            for kw in call.keywords:
                sinks.append((kw.value, f"holder-envelope field {kw.arg or '**'}"))
        elif name == "HolderOperation":
            for arg in call.args:
                sinks.append((arg, "HolderOperation field"))
            for kw in call.keywords:
                sinks.append((kw.value, f"HolderOperation field {kw.arg or '**'}"))
        return sinks

    def message(self, sink_description: str) -> str:
        return (
            f"peer-identifying value flows into the anonymous channel "
            f"({sink_description}) — route it through repro.crypto.blind or a "
            "repro.anonymity pseudonym/voucher constructor"
        )


@register
class AnonymityTaint(Rule):
    code = "WP110"
    name = "anonymity-taint"
    scope = "program"
    rationale = (
        "The holder envelope is the anonymous channel: a peer id, account "
        "address, or identity key flowing into it un-blinded lets the broker "
        "link coins to peers — the exact linkage the paper's anonymity "
        "guarantee forbids."
    )

    def check(self, program: Program) -> Iterable[Diagnostic]:
        for finding in TaintAnalysis(program, AnonymityTaintSpec()).run():
            yield Diagnostic(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                code=self.code,
                message=finding.message,
            )
