"""WP109 — brokers are built by factories, not ad hoc.

A :class:`~repro.core.broker.Broker` constructed directly is a federation
hazard: PR 7 made broker identity a *topology* concern.  The network
factory (:mod:`repro.core.network`) is what threads the shared signing
key, the shard map, the per-shard durable store, and the detection service
through every shard consistently; crash recovery
(:mod:`repro.store.recovery`) is the one other legitimate birthplace,
rebuilding an existing identity from its journal.  A ``Broker(...)`` call
anywhere else produces a mint that signs coins nobody else trusts, or a
shard the router does not know about — bugs that surface far from the
construction site.

Tests may construct brokers directly (unit tests of the broker itself
must), so the rule exempts ``tests.*`` modules along with the factory
packages.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import dotted_name, in_package
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

#: The only modules allowed to call ``Broker(...)``: the topology factory
#: and the journal-replay recovery path.
EXEMPT_PACKAGES = ("repro.core.network", "repro.store.recovery", "tests")


def _is_broker_ctor(name: str | None) -> bool:
    """Whether a dotted callee name denotes the core Broker class."""
    if name is None:
        return False
    if name == "Broker":
        return True
    # Module-qualified spellings: ``broker.Broker``, ``core.broker.Broker``,
    # ``repro.core.broker.Broker``.
    return name.endswith(".Broker") and name.rsplit(".", 2)[-2] == "broker"


@register
class BrokerConstructionDiscipline(Rule):
    code = "WP109"
    name = "broker-factory-discipline"
    rationale = (
        "Direct Broker construction bypasses the topology factory that "
        "threads the federation's shared signing key, shard map, and "
        "durable store; rogue instances mint coins the rest of the "
        "federation rejects."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if in_package(module.module, EXEMPT_PACKAGES):
            return
        # The defining module may reference its own class freely.
        if module.module == "repro.core.broker":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_broker_ctor(dotted_name(node.func)):
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "direct Broker(...) construction outside the "
                        "repro.core.network factories / repro.store.recovery — "
                        "build a WhoPayNetwork (optionally with a "
                        "BrokerTopology) or recover from a journal instead"
                    ),
                )
