"""WP111 — secret egress (whole-program).

Private exponents (``keypair.x``), group member secrets, DSA nonces, and
Shamir shares must never reach an observable surface: log strings,
exception messages, handler reply payloads, or journal records.  Journal
records matter because the WAL outlives the process and is the first thing
an attacker with disk access reads; the sanctioned path is the serializer
layer in ``repro.store`` (optionally sealed with
``repro.anonymity.cipher``), never an ad-hoc dict with a raw ``.x`` in it.

Calls into the crypto/anonymity primitive modules are taint *barriers*: a
signature or ciphertext does not reveal its key, so ``dsa_sign(...,
keypair.x, ...)`` is clean while ``{"signing_x": keypair.x}`` is not.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.dataflow.callgraph import FunctionInfo
from repro.lint.dataflow.ordering import attr_chain
from repro.lint.dataflow.taint import TaintAnalysis, TaintSpec
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Program
from repro.lint.registry import Rule, register

#: Modules allowed to handle raw secrets: the crypto/anonymity primitives
#: themselves, the serializer/recovery layer (at-rest custody is its job),
#: persistence export (optional encryption handled there), and lint.
_EXEMPT_PREFIXES = (
    "repro.crypto",
    "repro.messages",
    "repro.store",
    "repro.anonymity",
    "repro.indirection",
    "repro.core.persistence",
    "repro.baselines",
    "repro.lint",
)

#: Barriers: calls into these return clean (one-way/encrypted outputs).
_BARRIER_PREFIXES = ("repro.crypto", "repro.anonymity", "repro.store")

_SECRET_ATTRS = frozenset({"x"})
_SECRET_CALLS = frozenset({"split_secret", "export_opening_shares"})
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical"}
)
_JOURNAL_SELF_METHODS = frozenset({"_wal", "_stage", "_commit_local"})


class SecretEgressSpec(TaintSpec):
    code = "WP111"

    def __init__(self, handler_fn_names: frozenset[str]) -> None:
        self._handlers = handler_fn_names

    def in_source_scope(self, module: str) -> bool:
        return not module.startswith(_EXEMPT_PREFIXES)

    def is_barrier_module(self, module: str) -> bool:
        return module.startswith(_BARRIER_PREFIXES)

    def is_source(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Attribute) and expr.attr in _SECRET_ATTRS

    def source_call(self, name: str | None) -> bool:
        return name is not None and name in _SECRET_CALLS

    def sink_args(
        self, call: ast.Call, fn: FunctionInfo
    ) -> list[tuple[ast.expr, str]]:
        func = call.func
        sinks: list[tuple[ast.expr, str]] = []
        if isinstance(func, ast.Attribute):
            chain = attr_chain(func.value)
            if func.attr in _JOURNAL_SELF_METHODS and chain[:1] == ["self"]:
                sinks.extend((arg, "a journal record") for arg in call.args)
            elif func.attr in ("append", "append_many") and chain and chain[-1] == "store":
                sinks.extend((arg, "a journal record") for arg in call.args)
            elif func.attr == "stage" and any("committer" in p for p in chain):
                sinks.extend((arg, "a journal record") for arg in call.args)
            elif func.attr in _LOG_METHODS and chain[:1] in (["log"], ["logger"], ["logging"]):
                sinks.extend((arg, "a log message") for arg in call.args)
        elif isinstance(func, ast.Name) and func.id == "print":
            sinks.extend((arg, "printed output") for arg in call.args)
        return sinks

    def raise_is_sink(self, fn: FunctionInfo) -> str | None:
        return "an exception message"

    def return_is_sink(self, fn: FunctionInfo) -> str | None:
        if fn.name in self._handlers:
            return "a handler reply payload"
        return None

    def message(self, sink_description: str) -> str:
        return (
            f"secret key material flows into {sink_description} — only the "
            "repro.store serializers (optionally sealed via "
            "repro.anonymity.cipher) may persist or expose secrets"
        )


@register
class SecretEgress(Rule):
    code = "WP111"
    name = "secret-egress"
    scope = "program"
    rationale = (
        "A private key, DSA nonce, or Shamir share in a log line, exception, "
        "reply, or journal record is a key-compromise primitive: the WAL and "
        "logs outlive the process and are world-readable surfaces."
    )

    def check(self, program: Program) -> Iterable[Diagnostic]:
        from repro.lint.dataflow.callgraph import get_index
        from repro.lint.dataflow.taint import handler_names

        spec = SecretEgressSpec(handler_names(get_index(program)))
        for finding in TaintAnalysis(program, spec).run():
            yield Diagnostic(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                code=self.code,
                message=finding.message,
            )
