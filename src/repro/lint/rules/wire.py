"""WP105 — wire-schema consistency (whole-program).

Every message kind a client or facade sends must have a Node somewhere
registering a handler for it, and every registered handler must have a
sender — otherwise client/handler drift ships silently and surfaces later
as a chaos-test timeout ("no handler for message kind ...") or as dead
protocol surface nobody exercises.

Send sites recognized:

* ``<facade>._call(dst, KIND, ...)`` — the typed-facade plumbing;
* ``<x>.rpc.call(dst, KIND, ...)`` / ``<x>._rpc.call(...)`` /
  ``<x>._shard_rpc.call(...)`` — RPC clients (the last is the broker's
  federation-internal shard-to-shard sender);
* ``<node>.request(dst, KIND, ...)`` — a node's convenience sender, from
  inside the node (``self.request``) or from an external driver script.

Handler sites: ``<node>.on(KIND, handler)``.

Kinds are resolved across the analyzed file set through
:class:`~repro.lint.resolve.ConstantResolver` (string literals, module
constants, ``protocol.X`` attributes, ``from m import NAME``).  Kind
expressions that are genuinely dynamic — a kind forwarded out of a payload
dict, as the i3 and onion relays do — resolve to ``None`` and are skipped:
the rule reports only what it can prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.asthelpers import receiver_attr
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo, Program
from repro.lint.registry import Rule, register
from repro.lint.resolve import ConstantResolver

_RPC_RECEIVERS = {"rpc", "_rpc", "_shard_rpc"}


@dataclass(frozen=True)
class _Site:
    path: str
    line: int
    col: int


def _kind_expr(node: ast.Call) -> ast.expr | None:
    """The kind-expression argument of a send/handler call, if this is one."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "on" and len(node.args) >= 2:
        return node.args[0]
    if func.attr == "_call" and len(node.args) >= 2:
        return node.args[1]
    if (
        func.attr == "call"
        and len(node.args) >= 2
        and receiver_attr(func.value) in _RPC_RECEIVERS
    ):
        return node.args[1]
    if (
        func.attr == "request"
        and len(node.args) >= 2
        and isinstance(func.value, ast.Name)
        and func.value.id != "transport"
    ):
        # self.request(dst, KIND, ...) inside a node, or an external driver
        # (example/bench script) calling <node>.request(dst, KIND, ...).
        # Transport.request has a different shape (src, dst, kind, payload),
        # so a bare ``transport`` receiver is excluded.
        return node.args[1]
    return None


@register
class WireSchemaConsistency(Rule):
    code = "WP105"
    name = "wire-schema-consistency"
    scope = "program"
    rationale = (
        "A kind sent with no handler (or handled with no sender) is "
        "client/server drift that otherwise surfaces as a runtime "
        "'no handler for message kind' failure or dead protocol surface."
    )

    def check(self, program: Program) -> Iterable[Diagnostic]:
        resolver = ConstantResolver(program)
        sent: dict[str, list[_Site]] = {}
        handled: dict[str, list[_Site]] = {}
        for module in program.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                expr = _kind_expr(node)
                if expr is None:
                    continue
                kind = resolver.resolve(expr, module)
                if kind is None:
                    continue  # dynamic kind — nothing provable
                table = handled if node.func.attr == "on" else sent  # type: ignore[union-attr]
                table.setdefault(kind, []).append(
                    _Site(module.path, node.lineno, node.col_offset)
                )
        for kind in sorted(set(sent) - set(handled)):
            for site in sent[kind]:
                yield Diagnostic(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"message kind {kind!r} is sent but no Node registers "
                        "a handler for it"
                    ),
                )
        for kind in sorted(set(handled) - set(sent)):
            for site in handled[kind]:
                yield Diagnostic(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"handler registered for message kind {kind!r} but no "
                        "client or facade ever sends it"
                    ),
                )
