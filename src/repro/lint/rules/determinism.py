"""WP102 — determinism: seeded randomness, virtual time, ordered iteration.

The chaos suite and sweep runner promise bit-identical replays per seed;
that promise dies the moment protocol code reads entropy or time from the
process environment.  Three hazard classes:

* module-level ``random.<fn>()`` calls — hidden global RNG state that no
  seed controls (``random.Random(seed)`` instances are the sanctioned
  form; ``secrets`` is *allowed* because key/nonce material is meant to be
  unpredictable and never feeds replay-checked schedules);
* wall-clock reads (``time.time()``, ``datetime.now()``, …) — all protocol
  timing flows from the virtual :class:`~repro.core.clock.Clock`;
* direct iteration over freshly built sets — ``PYTHONHASHSEED`` varies the
  order run to run, so a set feeding a wire payload, a metrics row, or any
  ordered container is a replay hazard.  ``sorted(...)`` is the fix.

Scope: every package under ``repro`` except offline tooling
(``repro.analysis``, ``repro.cli``, ``repro.lint``), which never touches
wire payloads or replay-checked state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import in_package
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

EXEMPT_PACKAGES = ("repro.analysis", "repro.cli", "repro.lint")

#: Functions on the *module-level* random generator (global hidden state).
RANDOM_MODULE_FNS = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "getrandbits", "seed",
    }
)

WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    }
)

_DATETIME_RECEIVERS = {"datetime", "date"}
_DATETIME_FNS = {"now", "utcnow", "today"}


def _is_setlike(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


@register
class DeterminismDiscipline(Rule):
    code = "WP102"
    name = "determinism-discipline"
    rationale = (
        "Unseeded randomness, wall-clock reads, and hash-ordered set "
        "iteration break bit-identical replay of fault schedules and sweeps."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if not module.module.startswith("repro"):
            return
        if in_package(module.module, EXEMPT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For) and _is_setlike(node.iter):
                yield self._set_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_setlike(generator.iter):
                        yield self._set_iteration(module, generator.iter)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterable[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # list(set(...)) / tuple(set(...)) materialize hash order.
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple")
                and node.args
                and _is_setlike(node.args[0])
            ):
                yield self._set_iteration(module, node.args[0])
            return
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "random":
            if func.attr in RANDOM_MODULE_FNS:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        f"module-level random.{func.attr}() uses hidden global "
                        "RNG state — draw from a seeded random.Random instance"
                    ),
                )
        elif isinstance(receiver, ast.Name) and receiver.id == "time":
            if func.attr in WALL_CLOCK_TIME_FNS:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        f"wall-clock time.{func.attr}() in protocol code — "
                        "all timing flows from the virtual Clock"
                    ),
                )
        elif func.attr in _DATETIME_FNS:
            tail = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr if isinstance(receiver, ast.Attribute) else None
            )
            if tail in _DATETIME_RECEIVERS:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        f"wall-clock {tail}.{func.attr}() in protocol code — "
                        "all timing flows from the virtual Clock"
                    ),
                )

    def _set_iteration(self, module: ModuleInfo, expr: ast.expr) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=expr.lineno,
            col=expr.col_offset,
            code=self.code,
            message=(
                "iterating a set in hash order — wrap in sorted(...) so wire "
                "payloads and metrics replay bit-identically"
            ),
        )
