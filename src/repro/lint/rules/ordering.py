"""WP112 / WP113 — happens-before discipline in protocol handlers.

WP112 (journal-before-reply): the durability contract from the WAL and
group-commit work — any durable-state mutation a handler or public method
performs must be covered by a journal write (``self._wal*`` /
``self._stage`` / ``DurableStore.append`` / ``GroupCommitter.stage``)
before control returns a reply.  A mutation still pending at a ``return``
means a crash after the reply escapes loses acknowledged state; a journal
statement made unreachable by an earlier ``return`` is the same bug in
dead-code form.

WP113 (verify-before-trust): once a handler touches untrusted input — a
raw read of its payload parameter or an envelope decode — no durable-state
mutation or journal write may execute until a signature/validation call
dominates the path.  This is what keeps a forged cross-shard prepare or an
unsigned holder operation from being applied.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.dataflow.ordering import (
    ObligationAnalysis,
    OrderingConfig,
    TrustAnalysis,
    TrustConfig,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Program
from repro.lint.registry import Rule, register
from repro.lint.rules.durability import DURABLE_FIELDS

_SCOPE = ("repro.core.peer", "repro.core.broker", "repro.core.anonymous_owner")

#: peer-side durable containers join the broker's WP106 set
_ORDERING_DURABLE = frozenset(DURABLE_FIELDS) | {"wallet", "owned", "relinquishments"}

#: attribute writes on non-self receivers that mutate journaled objects
_DURABLE_ATTRS = frozenset({"binding", "coin", "dirty", "seq_floor"})

_JOURNAL_METHODS = frozenset(
    {"_wal", "_wal_held", "_wal_owned", "_wal_del", "_stage", "_commit_local"}
)

#: the journal primitives themselves define the discipline; analyzing their
#: bodies against it would be circular
_PRIMITIVES = _JOURNAL_METHODS

ORDERING_CONFIG = OrderingConfig(
    scope_modules=_SCOPE,
    durable_fields=_ORDERING_DURABLE,
    durable_attrs=_DURABLE_ATTRS,
    journal_methods=_JOURNAL_METHODS,
    exempt_functions=_PRIMITIVES,
)

TRUST_CONFIG = TrustConfig(
    scope_modules=_SCOPE,
    decode_calls=frozenset({"decode_signed", "decode_dual"}),
    verify_calls=frozenset({"compare_digest", "is_element"}),
    durable_fields=_ORDERING_DURABLE,
    durable_attrs=_DURABLE_ATTRS,
    journal_methods=_JOURNAL_METHODS,
    exempt_functions=_PRIMITIVES,
)


@register
class JournalBeforeReply(Rule):
    code = "WP112"
    name = "journal-before-reply"
    scope = "program"
    rationale = (
        "A reply released before the covering journal write acknowledges "
        "state a crash can lose — the exact window the fsync-gated "
        "group-commit release exists to close."
    )

    def check(self, program: Program) -> Iterable[Diagnostic]:
        for finding in ObligationAnalysis(program, ORDERING_CONFIG).run():
            yield Diagnostic(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                code=self.code,
                message=finding.message,
            )


@register
class VerifyBeforeTrust(Rule):
    code = "WP113"
    name = "verify-before-trust"
    scope = "program"
    rationale = (
        "Applying envelope data to durable state before a signature or "
        "validation check dominates it lets a forged message mint, credit, "
        "or destroy value."
    )

    def check(self, program: Program) -> Iterable[Diagnostic]:
        for finding in TrustAnalysis(program, TRUST_CONFIG).run():
            yield Diagnostic(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                code=self.code,
                message=finding.message,
            )
