"""WP103 — crypto hygiene: fastexp routing and constant-time comparison.

Two checks:

* **Direct 3-argument ``pow``** outside :mod:`repro.crypto` — protocol and
  baseline layers must route modular exponentiation through
  :func:`repro.crypto.fastexp.mod_pow`, which transparently uses the
  fixed-base tables PR 1 built.  A raw ``pow`` both forfeits the speedup
  and fragments the hot path the benchmarks measure.  Inside
  ``repro.crypto`` raw ``pow`` stays legal: fastexp itself and the
  primitives beneath it are the implementation layer.

* **Variable-time equality on secret material** — ``==`` / ``!=`` between
  values whose names mark them as signatures, MACs, tags, nonces, or other
  secrets (or digest outputs), where early-exit byte comparison leaks the
  matching prefix length through timing.  ``hmac.compare_digest`` (or
  :func:`repro.crypto.primitives.constant_time_eq`) is the fix.
  Comparisons against literal constants are exempt: a literal is public by
  definition (wire-format type tags, sentinel bytes).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import identifier_parts
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

CRYPTO_PACKAGE = "repro.crypto"

#: Identifier parts that mark a value as secret/authenticator material.
SECRET_NAME_PARTS = frozenset(
    {
        "sig", "sigs", "signature", "signatures",
        "mac", "macs", "tag", "tags",
        "priv", "privkey", "nonce", "nonces",
        "secret", "digest", "hmac",
    }
)

_DIGEST_CALL_ATTRS = {"digest", "hexdigest"}


def _is_secretish(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return bool(identifier_parts(expr.id) & SECRET_NAME_PARTS)
    if isinstance(expr, ast.Attribute):
        return bool(identifier_parts(expr.attr) & SECRET_NAME_PARTS)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        # hashlib.sha256(...).digest() compared inline
        return expr.func.attr in _DIGEST_CALL_ATTRS
    return False


@register
class CryptoHygiene(Rule):
    code = "WP103"
    name = "crypto-hygiene"
    rationale = (
        "Raw modular pow bypasses the fastexp acceleration layer; early-exit "
        "equality on secrets leaks match length through timing."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        in_crypto = module.module == CRYPTO_PACKAGE or module.module.startswith(
            CRYPTO_PACKAGE + "."
        )
        for node in ast.walk(module.tree):
            if (
                not in_crypto
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "pow"
                and len(node.args) == 3
            ):
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "direct pow(base, exp, mod) outside repro.crypto — "
                        "route through repro.crypto.fastexp.mod_pow to use "
                        "the fixed-base acceleration tables"
                    ),
                )
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    continue
                left, right = node.left, node.comparators[0]
                if isinstance(left, ast.Constant) or isinstance(right, ast.Constant):
                    continue  # literals are public values
                if _is_secretish(left) or _is_secretish(right):
                    yield Diagnostic(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=self.code,
                        message=(
                            "variable-time ==/!= on secret material — use "
                            "hmac.compare_digest (repro.crypto.primitives."
                            "constant_time_eq)"
                        ),
                    )
