"""WP101 — typed-facade discipline for outbound traffic.

Everything outside :mod:`repro.net` must send through the typed facades in
:mod:`repro.core.clients` (or a node's ``request``/``rpc``), never raw
``transport.request(...)`` or ``send_raw(...)``.  The facades are where
idempotency keys, retry policies, and the exhaustion →
``ServiceUnavailable`` mapping live; a raw call site silently opts out of
all three and breaks the chaos suite's exactly-once guarantees.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.asthelpers import receiver_attr
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo
from repro.lint.registry import Rule, register

#: The transport layer itself is the one place raw sends are legitimate.
EXEMPT_PACKAGE = "repro.net"

_TRANSPORT_RECEIVERS = {"transport", "_transport"}


@register
class TransportDiscipline(Rule):
    code = "WP101"
    name = "typed-facade-discipline"
    rationale = (
        "Raw transport.request/send_raw call sites bypass idempotency keys, "
        "retry policies, and ServiceUnavailable mapping (PR 2 invariant)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if module.module == EXEMPT_PACKAGE or module.module.startswith(EXEMPT_PACKAGE + "."):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if func.attr == "request" and receiver_attr(func.value) in _TRANSPORT_RECEIVERS:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "raw transport.request(...) outside repro.net — send "
                        "through the typed facades in repro.core.clients or "
                        "Node.request"
                    ),
                )
            elif func.attr == "send_raw":
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        "direct send_raw(...) outside repro.net — send_raw is "
                        "the RPC layer's transport touchpoint, not an API; "
                        "use Node.request or a typed facade"
                    ),
                )
