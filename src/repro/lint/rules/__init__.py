"""Built-in rules — importing this package registers all of them."""

from repro.lint.rules import (  # noqa: F401
    construction,
    crypto,
    determinism,
    durability,
    exceptions,
    seeding,
    transport,
    wire,
)
