"""Built-in rules — importing this package registers all of them."""

from repro.lint.rules import (  # noqa: F401
    anonymity,
    construction,
    crypto,
    determinism,
    durability,
    exceptions,
    liveness,
    ordering,
    secrets,
    seeding,
    transport,
    wire,
)
