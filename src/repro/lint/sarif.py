"""SARIF 2.1.0 output for code-scanning upload.

Hand-rolled against the spec (no dependency): one run, one driver, the
registered rules as ``reportingDescriptor`` entries, and one ``result``
per finding.  The baseline fingerprint rides along as a partial
fingerprint so code-scanning backends deduplicate findings across pushes
the same way the local baseline does — line-independent.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import get_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Parse errors (WP100) are engine-level, not registry rules — give them a
#: descriptor anyway so every result's ruleId resolves.
_PARSE_RULE = {
    "id": "WP100",
    "name": "parse-error",
    "shortDescription": {"text": "file does not parse"},
    "fullDescription": {
        "text": "A file that does not parse cannot be checked against any invariant."
    },
}


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors = [_PARSE_RULE]
    for rule in get_rules():
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.name.replace("-", " ")},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(diag: Diagnostic) -> dict[str, Any]:
    return {
        "ruleId": diag.code,
        "level": "error",
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    # Relative URI: resolved against the repository root by
                    # code-scanning backends.
                    "artifactLocation": {"uri": diag.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(diag.line, 1),
                        # SARIF columns are 1-based; diagnostics are 0-based.
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"wpLint/v1": diag.fingerprint},
    }


def to_sarif(findings: Sequence[Diagnostic]) -> dict[str, Any]:
    """A complete SARIF log document for ``findings``."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "wp-lint",
                        "rules": _rule_descriptors(),
                    }
                },
                "results": [_result(diag) for diag in findings],
            }
        ],
    }
