"""Suppression pragmas and module directives.

Two comment forms are recognized:

* ``# wp-lint: disable=WP101`` (or ``disable=WP101,WP105``) — suppress the
  named codes for findings on that physical line, or anywhere within the
  same (possibly multi-line) statement: a pragma on the closing line of a
  call that spans several lines suppresses a finding anchored at the first.
  A suppression is a visible, reviewable decision at the violation site;
  prefer it over the baseline for anything intentional.
* ``# wp-lint: module=repro.core.whatever`` — within the first few lines of
  a file, override the module name the engine derives from the path.  This
  exists for lint's own test fixtures, which live outside ``src/`` but must
  exercise package-scoped rules.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

_DISABLE_RE = re.compile(r"#\s*wp-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_MODULE_RE = re.compile(r"#\s*wp-lint:\s*module=([A-Za-z0-9_.]+)")

#: How deep into a file the ``module=`` directive is honored.
MODULE_DIRECTIVE_WINDOW = 10


def scan_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the set of codes disabled on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "wp-lint" not in text:
            continue
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            part.strip().upper() for part in match.group(1).split(",") if part.strip()
        )
        if codes:
            pragmas[lineno] = codes
    return pragmas


def module_override(lines: Sequence[str]) -> str | None:
    """The ``module=`` directive value, if one appears near the top of file."""
    for text in lines[:MODULE_DIRECTIVE_WINDOW]:
        if "wp-lint" not in text:
            continue
        match = _MODULE_RE.search(text)
        if match is not None:
            return match.group(1)
    return None


def statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(first, last) line ranges of every multi-line logical statement.

    Simple statements span their full source extent; compound statements
    (``if``/``for``/``while``/``with``) span only their *header* expression,
    so a pragma inside a loop body never leaks onto the loop line.  Class
    and function definitions (and ``try``) contribute no span of their own —
    their bodies are covered by the statements inside them.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.If, ast.While)):
            end = node.test.end_lineno
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            end = node.iter.end_lineno
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            end = max(item.context_expr.end_lineno or 0 for item in node.items)
        elif isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try, ast.Match),
        ):
            continue
        else:
            end = node.end_lineno
        if end is not None and end > node.lineno:
            spans.append((node.lineno, end))
    return spans


def expand_pragmas(
    pragmas: dict[int, frozenset[str]], spans: Sequence[tuple[int, int]]
) -> dict[int, frozenset[str]]:
    """Widen line pragmas so they cover every line of their statement.

    A ``disable=`` pragma on any physical line of a multi-line statement
    suppresses findings anchored at any other line of that statement — in
    particular a pragma on the closing line of a spanning call suppresses a
    finding reported at the opening line.
    """
    if not pragmas:
        return dict(pragmas)
    merged: dict[int, set[str]] = {line: set(codes) for line, codes in pragmas.items()}
    for start, end in spans:
        codes: set[str] = set()
        for line in range(start, end + 1):
            codes |= pragmas.get(line, frozenset())
        if not codes:
            continue
        for line in range(start, end + 1):
            merged.setdefault(line, set()).update(codes)
    return {line: frozenset(codes) for line, codes in merged.items()}


def is_suppressed(code: str, line: int, pragmas: dict[int, frozenset[str]]) -> bool:
    """True iff ``code`` is disabled on ``line`` by a pragma."""
    codes = pragmas.get(line)
    return codes is not None and code.upper() in codes
