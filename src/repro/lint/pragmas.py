"""Suppression pragmas and module directives.

Two comment forms are recognized:

* ``# wp-lint: disable=WP101`` (or ``disable=WP101,WP105``) — suppress the
  named codes for findings *on that physical line*.  A suppression is a
  visible, reviewable decision at the violation site; prefer it over the
  baseline for anything intentional.
* ``# wp-lint: module=repro.core.whatever`` — within the first few lines of
  a file, override the module name the engine derives from the path.  This
  exists for lint's own test fixtures, which live outside ``src/`` but must
  exercise package-scoped rules.
"""

from __future__ import annotations

import re
from typing import Sequence

_DISABLE_RE = re.compile(r"#\s*wp-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_MODULE_RE = re.compile(r"#\s*wp-lint:\s*module=([A-Za-z0-9_.]+)")

#: How deep into a file the ``module=`` directive is honored.
MODULE_DIRECTIVE_WINDOW = 10


def scan_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the set of codes disabled on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "wp-lint" not in text:
            continue
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            part.strip().upper() for part in match.group(1).split(",") if part.strip()
        )
        if codes:
            pragmas[lineno] = codes
    return pragmas


def module_override(lines: Sequence[str]) -> str | None:
    """The ``module=`` directive value, if one appears near the top of file."""
    for text in lines[:MODULE_DIRECTIVE_WINDOW]:
        if "wp-lint" not in text:
            continue
        match = _MODULE_RE.search(text)
        if match is not None:
            return match.group(1)
    return None


def is_suppressed(code: str, line: int, pragmas: dict[int, frozenset[str]]) -> bool:
    """True iff ``code`` is disabled on ``line`` by a pragma."""
    codes = pragmas.get(line)
    return codes is not None and code.upper() in codes
