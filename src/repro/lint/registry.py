"""Rule registry: stable codes, one instance per rule, lazy built-in loading.

Rules self-register at import time via :func:`register`; the engine asks
:func:`get_rules` for the active set, which imports the built-in rule
modules on first use (keeping ``registry`` import-cycle free — rule modules
import *this* module, never the other way around).
"""

from __future__ import annotations

import importlib
import re
from typing import ClassVar, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.diagnostics import Diagnostic
    from repro.lint.engine import ModuleInfo, Program

_CODE_RE = re.compile(r"^WP\d{3}$")


class Rule:
    """Base class for lint rules.

    ``scope`` selects the check signature:

    * ``"file"`` — ``check(module: ModuleInfo)`` runs once per source file;
    * ``"program"`` — ``check(program: Program)`` runs once over the whole
      file set (cross-module rules like wire-schema consistency).
    """

    code: ClassVar[str]
    name: ClassVar[str]
    scope: ClassVar[str] = "file"
    rationale: ClassVar[str] = ""

    def check(self, target: "ModuleInfo | Program") -> "Iterable[Diagnostic]":
        raise NotImplementedError


_RULES: dict[str, Rule] = {}
_BUILTINS_LOADED = False


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule under its code."""
    if not _CODE_RE.match(getattr(cls, "code", "")):
        raise ValueError(f"{cls.__name__}: rule code must match WPxxx")
    if cls.scope not in ("file", "program"):
        raise ValueError(f"{cls.__name__}: scope must be 'file' or 'program'")
    rule = cls()
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        importlib.import_module("repro.lint.rules")
        _BUILTINS_LOADED = True


def get_rules() -> list[Rule]:
    """All registered rules, sorted by code (stable output ordering)."""
    _load_builtins()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    """Look up one rule by its code (raises ``KeyError`` if unknown)."""
    _load_builtins()
    return _RULES[code]
