"""Content-hash incremental cache for the linter.

Two levels of reuse, both keyed on file *content* (SHA-1), never mtimes:

* **Full-tree fast path** — the cache records a signature over the whole
  file set (every ``(path, sha1)`` pair plus the rule-set version).  When
  it matches, the final :class:`~repro.lint.engine.LintResult` is replayed
  without parsing a single file.  This is the second-consecutive-CI-run
  case and costs one hash pass over the tree.
* **Per-file reuse** — when only some files changed, unchanged files skip
  their *file-scoped* rules (their raw findings are replayed from the
  cache).  Program-scoped rules are whole-program by construction — any
  hash change invalidates their result — so they re-run over the full
  parsed set, which the partial path therefore still builds.

The rule-set version is derived from the registered rule codes and a
schema counter, so adding a rule (or changing the cache layout) discards
stale entries instead of replaying findings the new rule set would not
produce.  Corrupt or unreadable cache files degrade to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    LintResult,
    PARSE_ERROR_CODE,
    Program,
    apply_suppression,
    collect_files,
    file_findings,
    load_source,
    program_findings,
)
from repro.lint.registry import get_rules

DEFAULT_CACHE_PATH = ".wp-lint-cache.json"

#: Bump to invalidate every existing cache (layout or semantics change).
_CACHE_SCHEMA = 1


def ruleset_version() -> str:
    """Identity of the active rule set (cache invalidation key)."""
    codes = ",".join(rule.code for rule in get_rules())
    raw = f"schema={_CACHE_SCHEMA};rules={codes}"
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]


def _sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


def _tree_key(hashes: Sequence[tuple[str, str]]) -> str:
    raw = ";".join(f"{path}={sha}" for path, sha in sorted(hashes))
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


class LintCache:
    """On-disk cache: per-file raw findings plus one whole-tree result."""

    def __init__(self, path: str, data: dict[str, Any] | None = None) -> None:
        self.path = path
        data = data if isinstance(data, dict) else {}
        if data.get("version") != ruleset_version():
            data = {}
        self._files: dict[str, Any] = dict(data.get("files", {}))
        self._result: dict[str, Any] = dict(data.get("result", {}))

    @classmethod
    def load(cls, path: str) -> "LintCache":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls(path, json.load(fh))
        except (OSError, ValueError):
            return cls(path, None)

    def save(self) -> None:
        payload = {
            "version": ruleset_version(),
            "files": self._files,
            "result": self._result,
        }
        try:
            with open(self.path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
        except OSError:
            pass  # a cache that cannot be written is just a cold cache

    # -- lookups -------------------------------------------------------------

    def cached_result(self, tree_key: str) -> LintResult | None:
        if self._result.get("tree") != tree_key:
            return None
        try:
            return LintResult(
                findings=[
                    Diagnostic.from_json(e) for e in self._result["findings"]
                ],
                suppressed=int(self._result["suppressed"]),
                checked_files=int(self._result["checked_files"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def cached_file_findings(self, path: str, sha: str) -> list[Diagnostic] | None:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha1") != sha:
            return None
        try:
            return [Diagnostic.from_json(e) for e in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    # -- updates -------------------------------------------------------------

    def store_file(self, path: str, sha: str, findings: Sequence[Diagnostic]) -> None:
        self._files[path] = {
            "sha1": sha,
            "findings": [diag.to_json() for diag in findings],
        }

    def store_result(
        self, tree_key: str, result: LintResult, live_paths: Sequence[str]
    ) -> None:
        self._result = {
            "tree": tree_key,
            "findings": [diag.to_json() for diag in result.findings],
            "suppressed": result.suppressed,
            "checked_files": result.checked_files,
        }
        # Drop entries for files no longer in the tree.
        keep = frozenset(live_paths)
        self._files = {p: e for p, e in self._files.items() if p in keep}


def lint_paths_cached(
    paths: Sequence[str], cache: LintCache | None
) -> tuple[LintResult, str]:
    """Lint from disk with content-hash reuse.

    Returns ``(result, cache_status)`` where the status is one of
    ``"disabled"``, ``"full-hit"``, ``"partial-hit:<reused>/<total>"``, or
    ``"cold"`` — CI greps for ``full-hit`` to prove the fast path fired.
    """
    files = collect_files(paths)
    blobs: list[tuple[str, bytes]] = []
    for path in files:
        with open(path, "rb") as fh:
            blobs.append((path, fh.read()))
    hashes = [(path, _sha1(blob)) for path, blob in blobs]

    if cache is None:
        return _lint_blobs(blobs, None, dict(hashes))[0], "disabled"

    tree_key = _tree_key(hashes)
    cached = cache.cached_result(tree_key)
    if cached is not None:
        return cached, "full-hit"

    result, reused = _lint_blobs(blobs, cache, dict(hashes))
    cache.store_result(tree_key, result, [path for path, _ in hashes])
    cache.save()
    status = f"partial-hit:{reused}/{len(files)}" if reused else "cold"
    return result, status


def _lint_blobs(
    blobs: Sequence[tuple[str, bytes]],
    cache: LintCache | None,
    hashes: dict[str, str],
) -> tuple[LintResult, int]:
    """The partial/cold path: parse everything, reuse file-rule output."""
    program = Program()
    parse_errors: list[Diagnostic] = []
    raw: list[Diagnostic] = []
    reused = 0
    for path, blob in blobs:
        try:
            source = blob.decode("utf-8")
            info = load_source(path, source)
        except (UnicodeDecodeError, SyntaxError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            offset = getattr(exc, "offset", 1) or 1
            msg = getattr(exc, "msg", None) or "file is not valid UTF-8"
            parse_errors.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=offset - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {msg}",
                )
            )
            continue
        program.modules.append(info)
        cached = (
            cache.cached_file_findings(path, hashes[path])
            if cache is not None
            else None
        )
        if cached is not None:
            raw.extend(cached)
            reused += 1
        else:
            found = file_findings(info)
            raw.extend(found)
            if cache is not None:
                cache.store_file(path, hashes[path], found)
    raw.extend(parse_errors)
    raw.extend(program_findings(program))
    pragma_index = {info.path: info.pragmas for info in program.modules}
    findings, suppressed = apply_suppression(raw, pragma_index)
    result = LintResult(
        findings=findings,
        suppressed=suppressed,
        checked_files=len(program.modules) + len(parse_errors),
    )
    return result, reused
