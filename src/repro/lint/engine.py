"""Lint engine: file loading, module naming, rule dispatch, suppression.

The engine is deliberately filesystem-light: :func:`lint_sources` accepts
in-memory ``(path, source)`` pairs so tests can lint snippets without
touching disk, and :func:`lint_paths` is a thin walk-and-read wrapper over
it.  Module names are derived from the path (everything from the last
``repro`` path component down), overridable with a ``# wp-lint:
module=...`` directive for fixtures that live outside ``src/``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import (
    expand_pragmas,
    is_suppressed,
    module_override,
    scan_pragmas,
    statement_spans,
)
from repro.lint.registry import get_rules

#: Engine-level code for files the parser rejects (not a registry rule: a
#: file that does not parse cannot be checked against any invariant).
PARSE_ERROR_CODE = "WP100"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class ModuleInfo:
    """One parsed source file plus the metadata rules need."""

    path: str
    module: str
    tree: ast.Module
    lines: list[str]
    pragmas: dict[int, frozenset[str]]


@dataclass
class Program:
    """The whole analyzed file set (input to program-scoped rules)."""

    modules: list[ModuleInfo] = field(default_factory=list)

    def by_path(self, path: str) -> ModuleInfo | None:
        for info in self.modules:
            if info.path == path:
                return info
        return None


@dataclass
class LintResult:
    """Findings plus the bookkeeping the CLI reports."""

    findings: list[Diagnostic]
    suppressed: int
    checked_files: int


def derive_module_name(path: str) -> str:
    """Dotted module name from a file path (``src/repro/a/b.py`` → ``repro.a.b``)."""
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        # Last occurrence: a checkout under /home/x/repro/src/repro/... must
        # resolve to the package, not the checkout directory.
        start = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[start:]
        return ".".join(parts)
    return parts[-1] if parts else "<unknown>"


def load_source(path: str, source: str, module: str | None = None) -> ModuleInfo:
    """Parse ``source``; raises ``SyntaxError`` for unparseable files."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    name = module or module_override(lines) or derive_module_name(path)
    return ModuleInfo(
        path=path,
        module=name,
        tree=tree,
        lines=lines,
        pragmas=expand_pragmas(scan_pragmas(lines), statement_spans(tree)),
    )


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(root, filename))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return found


def file_findings(info: ModuleInfo) -> list[Diagnostic]:
    """Raw findings from every file-scoped rule on one module."""
    found: list[Diagnostic] = []
    for rule in get_rules():
        if rule.scope == "file":
            found.extend(rule.check(info))
    return found


def program_findings(program: Program) -> list[Diagnostic]:
    """Raw findings from every program-scoped rule on the whole file set."""
    found: list[Diagnostic] = []
    for rule in get_rules():
        if rule.scope == "program":
            found.extend(rule.check(program))
    return found


def apply_suppression(
    raw: Iterable[Diagnostic], pragma_index: dict[str, dict[int, frozenset[str]]]
) -> tuple[list[Diagnostic], int]:
    """Sorted, deduplicated findings minus pragma-suppressed ones."""
    findings: list[Diagnostic] = []
    suppressed = 0
    for diag in sorted(set(raw)):
        pragmas = pragma_index.get(diag.path, {})
        if is_suppressed(diag.code, diag.line, pragmas):
            suppressed += 1
        else:
            findings.append(diag)
    return findings, suppressed


def lint_program(program: Program, parse_errors: Sequence[Diagnostic] = ()) -> LintResult:
    """Run every registered rule, then apply per-line pragma suppression."""
    raw = list(parse_errors)
    for info in program.modules:
        raw.extend(file_findings(info))
    raw.extend(program_findings(program))
    pragma_index = {info.path: info.pragmas for info in program.modules}
    findings, suppressed = apply_suppression(raw, pragma_index)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        checked_files=len(program.modules) + len(parse_errors),
    )


def lint_sources(entries: Sequence[tuple[str, str] | tuple[str, str, str]]) -> LintResult:
    """Lint in-memory sources: ``(path, source)`` or ``(path, source, module)``."""
    program = Program()
    parse_errors: list[Diagnostic] = []
    for entry in entries:
        path, source = entry[0], entry[1]
        module = entry[2] if len(entry) == 3 else None
        try:
            program.modules.append(load_source(path, source, module))
        except SyntaxError as exc:
            parse_errors.append(
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return lint_program(program, parse_errors)


def lint_paths(paths: Sequence[str]) -> LintResult:
    """Lint files/directories from disk."""
    entries = []
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            entries.append((path, fh.read()))
    return lint_sources(entries)
