"""``repro.lint`` — AST-based invariant checker for the WhoPay codebase.

The reproduction's evaluation (paper Section 6) only means something if
every run is replayable and every protocol exchange is verifiable, so the
codebase carries a handful of load-bearing conventions:

* all internal traffic goes through the typed facades in
  :mod:`repro.core.clients` / the RPC layer, never raw ``transport.request``;
* all randomness comes from seeded ``random.Random`` instances and all
  timing from the virtual :class:`~repro.core.clock.Clock`, so fault
  schedules and sweeps replay bit-identically;
* secret-bearing byte strings are compared in constant time and modular
  exponentiation routes through :mod:`repro.crypto.fastexp`;
* protocol errors are never silently swallowed;
* every message kind a client sends has a registered handler, and vice
  versa, so client/handler drift is caught at lint time instead of as a
  chaos-test timeout.

This package enforces those conventions with a from-scratch static
analyzer built on stdlib :mod:`ast` only: a rule registry with stable
``WPxxx`` codes, per-file and whole-program visitors, ``# wp-lint:
disable=WPxxx`` suppression pragmas, a committed baseline for
grandfathered findings, and a CLI::

    python -m repro.lint [paths] --format text|json

See ``docs/LINT.md`` for the rule catalogue and the rationale each rule
traces back to.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    LintResult,
    ModuleInfo,
    Program,
    lint_paths,
    lint_sources,
)
from repro.lint.registry import Rule, get_rules

__all__ = [
    "Diagnostic",
    "LintResult",
    "ModuleInfo",
    "Program",
    "Rule",
    "get_rules",
    "lint_paths",
    "lint_sources",
]
