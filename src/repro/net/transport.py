"""The instrumented in-memory transport with deterministic fault injection.

Synchronous request/response delivery between registered nodes, with:

* per-entity message and byte counters (sent and received) — the
  communication-cost measurements of Figures 7/9/11 come from counters with
  exactly this shape;
* an online/offline gate per node, so protocol code experiences peer churn
  the same way it would over a real network (requests to offline peers fail
  with :class:`NodeOffline`);
* optional per-hop latency accounting against a virtual clock (the
  transport does not sleep; it accumulates what *would* have been waited);
* a schedulable, seeded fault injector (:class:`FaultPlan`) covering the
  failure modes a real deployment sees: request loss, reply loss,
  crash-after-handler (the destination applied the operation but the reply
  never made it back), duplicate delivery, latency jitter, and per-link
  partition windows measured against the virtual clock.

Delivery is a direct function call into the destination node's handler, so
tests are deterministic and stack traces span the whole protocol exchange.
Every fault decision comes from one seeded RNG inside the installed
:class:`FaultPlan`, so a fault schedule replays bit-identically for a
given seed — chaos tests rely on this to diff whole-ledger outcomes.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.messages.codec import encode
from repro.store.crashpoints import SimulatedCrash

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.clock import Clock
    from repro.net.node import Node


class NetworkError(Exception):
    """Base class for transport-level failures."""


class UnknownNode(NetworkError):
    """The destination address is not registered."""


class NodeOffline(NetworkError):
    """The destination node exists but is currently offline."""


class MessageDropped(NetworkError):
    """The fault injector dropped the request before delivery."""


class ReplyLost(NetworkError):
    """The handler ran but the reply was lost (crash-after-handler or
    reply dropped in transit).  The caller cannot tell whether the
    operation was applied — exactly the ambiguity idempotency keys and
    the replay cache exist to resolve."""


class LinkPartitioned(NetworkError):
    """A partition window currently severs the src↔dst link."""


@dataclass
class TrafficCounter:
    """Messages/bytes sent and received by one entity."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def messages_total(self) -> int:
        """Sent plus received messages (the paper counts both sides)."""
        return self.messages_sent + self.messages_received


# -- fault plan ---------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """A symmetric link cut between ``a`` and ``b`` during [start, end).

    Either endpoint may be the wildcard ``"*"`` — ``Partition("broker", "*")``
    isolates the broker from everyone.  Times are virtual-clock seconds; with
    no clock attached to the transport, "now" is 0.0, so a window starting at
    0 is simply always active.
    """

    a: str
    b: str
    start: float = 0.0
    end: float = math.inf

    def blocks(self, src: str, dst: str, now: float) -> bool:
        """True iff this partition severs src→dst at virtual time ``now``."""
        if not (self.start <= now < self.end):
            return False

        def matches(addr: str, pattern: str) -> bool:
            return pattern == "*" or pattern == addr

        return (matches(src, self.a) and matches(dst, self.b)) or (
            matches(src, self.b) and matches(dst, self.a)
        )


@dataclass
class FaultStats:
    """What actually fired while a :class:`FaultPlan` was installed."""

    requests_dropped: int = 0
    replies_dropped: int = 0
    crash_after_handler: int = 0
    duplicates_delivered: int = 0
    partition_blocks: int = 0
    jitter_accrued: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (chaos tests diff these across replayed runs)."""
        return {
            "requests_dropped": self.requests_dropped,
            "replies_dropped": self.replies_dropped,
            "crash_after_handler": self.crash_after_handler,
            "duplicates_delivered": self.duplicates_delivered,
            "partition_blocks": self.partition_blocks,
            "jitter_accrued": self.jitter_accrued,
        }


class FaultPlan:
    """A seeded, schedulable description of what the network does wrong.

    All probabilistic dimensions draw from the single ``rng`` seeded at
    construction, so the complete fault schedule is a pure function of
    (seed, request sequence) and replays deterministically.

    Dimensions:

    * ``request_loss`` — the request vanishes before the handler runs
      (sender pays for the send; nothing was applied);
    * ``response_loss`` — the handler ran and replied, the reply vanished
      (both sides pay for the request, the destination pays for the reply);
    * ``crash_after_handler`` — the destination applied the operation and
      crashed before serializing a reply (no reply bytes exist at all);
    * ``duplicate_rate`` — the network delivers the request a second time
      after the first completes (models at-least-once delivery);
    * ``latency_jitter`` — adds Uniform[0, jitter) virtual seconds per
      delivered message on top of the transport's fixed per-hop latency;
    * ``partitions`` — scheduled link cuts (see :class:`Partition`).

    ``scripted_request_drops`` / ``scripted_reply_drops`` are deterministic
    one-shot budgets consumed *before* any random draw — regression tests
    use them to force "this exact reply is lost" without tuning seeds.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        request_loss: float = 0.0,
        response_loss: float = 0.0,
        duplicate_rate: float = 0.0,
        crash_after_handler: float = 0.0,
        latency_jitter: float = 0.0,
    ) -> None:
        for name, rate in (
            ("request_loss", request_loss),
            ("response_loss", response_loss),
            ("duplicate_rate", duplicate_rate),
            ("crash_after_handler", crash_after_handler),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if latency_jitter < 0.0:
            raise ValueError("latency_jitter must be >= 0")
        self.seed = seed
        self.rng = random.Random(seed)
        self.request_loss = request_loss
        self.response_loss = response_loss
        self.duplicate_rate = duplicate_rate
        self.crash_after_handler = crash_after_handler
        self.latency_jitter = latency_jitter
        self.partitions: list[Partition] = []
        self.scripted_request_drops = 0
        self.scripted_reply_drops = 0
        self.stats = FaultStats()

    def partition(self, a: str, b: str, start: float = 0.0, end: float = math.inf) -> "FaultPlan":
        """Schedule a link cut (returns self for chaining)."""
        self.partitions.append(Partition(a=a, b=b, start=start, end=end))
        return self

    def is_partitioned(self, src: str, dst: str, now: float) -> bool:
        """True iff any scheduled partition currently severs src↔dst."""
        return any(p.blocks(src, dst, now) for p in self.partitions)

    def reseed(self, seed: int | None = None) -> None:
        """Restart the random schedule (same seed by default) and zero stats."""
        self.seed = self.seed if seed is None else seed
        self.rng = random.Random(self.seed)
        self.stats = FaultStats()

    # Drawing helpers: each dimension draws from the shared RNG only when
    # its rate is non-zero, so RNG consumption — and therefore the whole
    # schedule — depends only on the plan's configuration and the request
    # sequence, never on which dimensions happen to fire.

    def _fires(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def take_request_drop(self) -> bool:
        """Should this request be lost? (scripted drops consumed first)"""
        if self.scripted_request_drops > 0:
            self.scripted_request_drops -= 1
            return True
        return self._fires(self.request_loss)

    def take_reply_drop(self) -> bool:
        """Should this reply be lost in transit? (scripted drops first)"""
        if self.scripted_reply_drops > 0:
            self.scripted_reply_drops -= 1
            return True
        return self._fires(self.response_loss)

    def take_duplicate(self) -> bool:
        """Should this request be delivered a second time?"""
        return self._fires(self.duplicate_rate)

    def take_crash(self) -> bool:
        """Should the destination crash after running the handler?"""
        return self._fires(self.crash_after_handler)

    def take_jitter(self) -> float:
        """Extra virtual latency for one delivered message."""
        if self.latency_jitter <= 0.0:
            return 0.0
        return self.rng.random() * self.latency_jitter


class Transport:
    """The shared in-memory fabric all nodes attach to.

    ``clock`` (optional) is the simulation's virtual clock; partitions are
    scheduled against it and jitter accrues to ``virtual_latency_accrued``
    without advancing it (advancing would age coins).
    """

    def __init__(self, per_hop_latency: float = 0.0) -> None:
        self._nodes: dict[str, "Node"] = {}
        self.counters: dict[str, TrafficCounter] = defaultdict(TrafficCounter)
        self.per_hop_latency = per_hop_latency
        self.virtual_latency_accrued = 0.0
        self.total_messages = 0
        self.messages_dropped = 0
        self.faults: FaultPlan | None = None
        self.clock: "Clock | None" = None
        # Crash supervision: when a node's handler dies with SimulatedCrash
        # (a storage crash point fired), the node is taken offline and the
        # registered handler — typically a harness restart/recovery hook —
        # runs before the sender sees ReplyLost.
        self.crash_handlers: dict[str, Callable[[SimulatedCrash], None]] = {}
        self.crashes_simulated = 0

    # -- fault injection ------------------------------------------------------

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Install (or, with ``None``, remove) the active fault plan."""
        self.faults = plan

    def clear_faults(self) -> None:
        """Remove the active fault plan (the network turns reliable again)."""
        self.faults = None

    def set_crash_handler(self, address: str, handler: Callable[[SimulatedCrash], None] | None) -> None:
        """Register (or, with ``None``, remove) a crash supervisor for ``address``.

        The handler runs synchronously after the crashed node is marked
        offline and before the in-flight sender sees :class:`ReplyLost` —
        so a supervisor that restarts the node lets the sender's *retry*
        (same idempotency key) reach the recovered instance.
        """
        if handler is None:
            self.crash_handlers.pop(address, None)
        else:
            self.crash_handlers[address] = handler

    def _node_crashed(self, node: "Node", crash: SimulatedCrash) -> None:
        node.online = False
        self.crashes_simulated += 1
        handler = self.crash_handlers.get(node.address)
        if handler is not None:
            handler(crash)

    def set_loss(self, rate: float, seed: int = 0) -> None:
        """Drop each request with probability ``rate`` (deterministic RNG).

        Legacy single-dimension interface, kept for existing tests and
        experiments: it installs (or updates) a :class:`FaultPlan` with only
        ``request_loss`` set.  A dropped message surfaces to the sender as
        :class:`MessageDropped` before the handler runs.  ``rate=0``
        disables request loss (other installed dimensions are untouched).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if self.faults is None:
            if rate == 0.0:
                return
            self.faults = FaultPlan(seed=seed, request_loss=rate)
        else:
            self.faults.request_loss = rate
            if rate > 0.0:
                self.faults.reseed(seed)

    # -- registration ------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach ``node``; its address must be unique on this transport."""
        if node.address in self._nodes:
            raise ValueError(f"duplicate node address {node.address!r}")
        self._nodes[node.address] = node

    def unregister(self, address: str) -> None:
        """Detach the node at ``address`` (no-op if absent)."""
        self._nodes.pop(address, None)

    def node(self, address: str) -> "Node":
        """Look up a node by address."""
        try:
            return self._nodes[address]
        except KeyError:
            raise UnknownNode(address) from None

    def addresses(self) -> list[str]:
        """All registered addresses (stable order of registration)."""
        return list(self._nodes)

    def is_online(self, address: str) -> bool:
        """True iff ``address`` is registered and its node is online."""
        node = self._nodes.get(address)
        return node is not None and node.online

    # -- messaging ---------------------------------------------------------

    def request(self, src: str, dst: str, kind: str, payload: Any) -> Any:
        """Send a request from ``src`` to ``dst`` and return the response.

        ``payload`` must be codec-encodable (its size is what the byte
        counters record).  Raises :class:`UnknownNode` / :class:`NodeOffline`
        on addressing failures; handler exceptions propagate to the caller,
        mirroring an application-level error response.  With a fault plan
        installed, may also raise :class:`LinkPartitioned`,
        :class:`MessageDropped` (handler did not run) or :class:`ReplyLost`
        (handler *did* run; the caller cannot know).
        """
        node = self.node(dst)
        if not node.online:
            raise NodeOffline(dst)
        plan = self.faults
        if plan is not None:
            now = self.clock.now() if self.clock is not None else 0.0
            if plan.is_partitioned(src, dst, now):
                plan.stats.partition_blocks += 1
                raise LinkPartitioned(f"{src} -x- {dst} ({kind})")
            if plan.take_request_drop():
                # The sender still paid to transmit; nobody received.
                self.messages_dropped += 1
                plan.stats.requests_dropped += 1
                self._account_send_only(src, payload)
                raise MessageDropped(f"{src} -> {dst} ({kind})")
        self._account(src, dst, payload, plan)
        try:
            response = node.handle(kind, src, payload)
        except SimulatedCrash as crash:
            # A storage crash point fired inside the handler: the node is
            # down, no reply bytes exist.  The sender sees the same
            # ambiguity as crash-after-handler — retryable via idempotency.
            self.messages_dropped += 1
            self._node_crashed(node, crash)
            raise ReplyLost(
                f"{dst} crashed at storage point {crash.site!r} handling {kind} from {src}"
            ) from crash
        if plan is not None:
            if plan.take_duplicate():
                # At-least-once delivery: the same request arrives again
                # after the first completed.  The replay cache (if the
                # payload is idempotency-keyed) makes the re-dispatch a
                # cache hit; raw traffic sees the handler run twice.
                plan.stats.duplicates_delivered += 1
                self._account(src, dst, payload, plan)
                try:
                    node.handle(kind, src, payload)
                except SimulatedCrash as crash:
                    # Even an invisible duplicate can hit a crash point —
                    # the node still goes down and the supervisor still runs.
                    self._node_crashed(node, crash)
                except Exception:
                    # The duplicate's outcome is invisible to the sender.
                    pass
            if plan.take_crash():
                # Handler committed, destination crashed pre-reply: no
                # reply bytes ever existed.
                self.messages_dropped += 1
                plan.stats.crash_after_handler += 1
                raise ReplyLost(f"{dst} crashed after handling {kind} from {src}")
            if plan.take_reply_drop():
                # Reply serialized and sent, lost in transit.
                self.messages_dropped += 1
                plan.stats.replies_dropped += 1
                self._account_send_only(dst, response)
                raise ReplyLost(f"{dst} -> {src} reply lost ({kind})")
        self._account(dst, src, response, plan)
        return response

    def _account(self, sender: str, receiver: str, payload: Any, plan: FaultPlan | None = None) -> None:
        size = len(encode(self._measurable(payload)))
        self.counters[sender].messages_sent += 1
        self.counters[sender].bytes_sent += size
        self.counters[receiver].messages_received += 1
        self.counters[receiver].bytes_received += size
        self.total_messages += 1
        self.virtual_latency_accrued += self.per_hop_latency
        if plan is not None:
            jitter = plan.take_jitter()
            if jitter:
                plan.stats.jitter_accrued += jitter
                self.virtual_latency_accrued += jitter

    def _account_send_only(self, sender: str, payload: Any) -> None:
        """Account a message that left the sender but was never received."""
        size = len(encode(self._measurable(payload)))
        self.counters[sender].messages_sent += 1
        self.counters[sender].bytes_sent += size
        self.total_messages += 1
        self.virtual_latency_accrued += self.per_hop_latency

    @staticmethod
    def _measurable(payload: Any) -> Any:
        """Reduce a payload to something the codec can size.

        Protocol objects expose ``encode()``; plain codec values pass
        through; anything else is sized by its repr (never happens for real
        protocol traffic, but keeps the counters total).
        """
        if payload is None or isinstance(payload, (int, str, bytes, bool)):
            return payload
        if hasattr(payload, "encode") and callable(payload.encode):
            encoded = payload.encode()
            if isinstance(encoded, bytes):
                return encoded
        if isinstance(payload, (list, tuple)):
            return [Transport._measurable(item) for item in payload]
        if isinstance(payload, dict):
            return {k: Transport._measurable(v) for k, v in payload.items()}
        return repr(payload)

    # -- metrics -----------------------------------------------------------

    def counter(self, address: str) -> TrafficCounter:
        """The traffic counter for ``address`` (created on first use)."""
        return self.counters[address]

    def reset_counters(self) -> None:
        """Zero all counters (between experiment phases)."""
        self.counters.clear()
        self.total_messages = 0
        self.messages_dropped = 0
        self.virtual_latency_accrued = 0.0
