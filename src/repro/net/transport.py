"""The instrumented in-memory transport.

Synchronous request/response delivery between registered nodes, with:

* per-entity message and byte counters (sent and received) — the
  communication-cost measurements of Figures 7/9/11 come from counters with
  exactly this shape;
* an online/offline gate per node, so protocol code experiences peer churn
  the same way it would over a real network (requests to offline peers fail
  with :class:`NodeOffline`);
* optional per-hop latency accounting against a virtual clock (the
  transport does not sleep; it accumulates what *would* have been waited).

Delivery is a direct function call into the destination node's handler, so
tests are deterministic and stack traces span the whole protocol exchange.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.messages.codec import encode

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class NetworkError(Exception):
    """Base class for transport-level failures."""


class UnknownNode(NetworkError):
    """The destination address is not registered."""


class NodeOffline(NetworkError):
    """The destination node exists but is currently offline."""


class MessageDropped(NetworkError):
    """The fault injector dropped this message (see Transport.set_loss)."""


@dataclass
class TrafficCounter:
    """Messages/bytes sent and received by one entity."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def messages_total(self) -> int:
        """Sent plus received messages (the paper counts both sides)."""
        return self.messages_sent + self.messages_received


class Transport:
    """The shared in-memory fabric all nodes attach to."""

    def __init__(self, per_hop_latency: float = 0.0) -> None:
        self._nodes: dict[str, "Node"] = {}
        self.counters: dict[str, TrafficCounter] = defaultdict(TrafficCounter)
        self.per_hop_latency = per_hop_latency
        self.virtual_latency_accrued = 0.0
        self.total_messages = 0
        self._loss_rate = 0.0
        self._loss_rng = None
        self.messages_dropped = 0

    # -- fault injection ------------------------------------------------------

    def set_loss(self, rate: float, seed: int = 0) -> None:
        """Drop each request with probability ``rate`` (deterministic RNG).

        A dropped message surfaces to the sender as :class:`MessageDropped`
        before the handler runs — the request-response model's analogue of
        a lost packet.  Protocol robustness tests use this to verify that
        no partial state survives a lost exchange.  ``rate=0`` disables.
        """
        import random as _random

        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._loss_rate = rate
        self._loss_rng = _random.Random(seed) if rate > 0 else None

    # -- registration ------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach ``node``; its address must be unique on this transport."""
        if node.address in self._nodes:
            raise ValueError(f"duplicate node address {node.address!r}")
        self._nodes[node.address] = node

    def unregister(self, address: str) -> None:
        """Detach the node at ``address`` (no-op if absent)."""
        self._nodes.pop(address, None)

    def node(self, address: str) -> "Node":
        """Look up a node by address."""
        try:
            return self._nodes[address]
        except KeyError:
            raise UnknownNode(address) from None

    def addresses(self) -> list[str]:
        """All registered addresses (stable order of registration)."""
        return list(self._nodes)

    def is_online(self, address: str) -> bool:
        """True iff ``address`` is registered and its node is online."""
        node = self._nodes.get(address)
        return node is not None and node.online

    # -- messaging ---------------------------------------------------------

    def request(self, src: str, dst: str, kind: str, payload: Any) -> Any:
        """Send a request from ``src`` to ``dst`` and return the response.

        ``payload`` must be codec-encodable (its size is what the byte
        counters record).  Raises :class:`UnknownNode` / :class:`NodeOffline`
        on addressing failures; handler exceptions propagate to the caller,
        mirroring an application-level error response.
        """
        node = self.node(dst)
        if not node.online:
            raise NodeOffline(dst)
        if self._loss_rng is not None and self._loss_rng.random() < self._loss_rate:
            self.messages_dropped += 1
            raise MessageDropped(f"{src} -> {dst} ({kind})")
        self._account(src, dst, payload)
        response = node.handle(kind, src, payload)
        self._account(dst, src, response)
        return response

    def _account(self, sender: str, receiver: str, payload: Any) -> None:
        size = len(encode(self._measurable(payload)))
        self.counters[sender].messages_sent += 1
        self.counters[sender].bytes_sent += size
        self.counters[receiver].messages_received += 1
        self.counters[receiver].bytes_received += size
        self.total_messages += 1
        self.virtual_latency_accrued += self.per_hop_latency

    @staticmethod
    def _measurable(payload: Any) -> Any:
        """Reduce a payload to something the codec can size.

        Protocol objects expose ``encode()``; plain codec values pass
        through; anything else is sized by its repr (never happens for real
        protocol traffic, but keeps the counters total).
        """
        if payload is None or isinstance(payload, (int, str, bytes, bool)):
            return payload
        if hasattr(payload, "encode") and callable(payload.encode):
            encoded = payload.encode()
            if isinstance(encoded, bytes):
                return encoded
        if isinstance(payload, (list, tuple)):
            return [Transport._measurable(item) for item in payload]
        if isinstance(payload, dict):
            return {k: Transport._measurable(v) for k, v in payload.items()}
        return repr(payload)

    # -- metrics -----------------------------------------------------------

    def counter(self, address: str) -> TrafficCounter:
        """The traffic counter for ``address`` (created on first use)."""
        return self.counters[address]

    def reset_counters(self) -> None:
        """Zero all counters (between experiment phases)."""
        self.counters.clear()
        self.total_messages = 0
        self.virtual_latency_accrued = 0.0
