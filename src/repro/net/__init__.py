"""In-memory network substrate.

The paper evaluates WhoPay in simulation; this package is the corresponding
stand-in for a real network: a deterministic, instrumented, in-memory
message-passing fabric.  It gives the protocol layer exactly what it needs —
addressed nodes, request/response RPC, offline failures — while counting
every message and byte per entity (the paper's "communication cost" metric,
Figures 7, 9, 11).

On top of the raw fabric sit the resilience pieces: a seeded fault injector
(:class:`FaultPlan`) and a retrying :class:`RpcClient` with idempotency-key
deduplication (:class:`ReplayCache`), so protocol traffic survives lossy,
partitioned, duplicating networks with exactly-once ledger effects.
"""

from repro.net.node import Node
from repro.net.rpc import (
    DEFAULT_POLICY,
    RESILIENT_POLICY,
    ReplayCache,
    RetriesExhausted,
    RetryPolicy,
    RpcClient,
    RpcError,
    RpcTimeout,
    new_idempotency_key,
)
from repro.net.transport import (
    FaultPlan,
    FaultStats,
    LinkPartitioned,
    MessageDropped,
    NetworkError,
    NodeOffline,
    Partition,
    ReplyLost,
    Transport,
    UnknownNode,
)

__all__ = [
    "Transport",
    "Node",
    "NetworkError",
    "NodeOffline",
    "UnknownNode",
    "MessageDropped",
    "ReplyLost",
    "LinkPartitioned",
    "FaultPlan",
    "FaultStats",
    "Partition",
    "RpcClient",
    "RpcError",
    "RpcTimeout",
    "RetryPolicy",
    "RetriesExhausted",
    "ReplayCache",
    "DEFAULT_POLICY",
    "RESILIENT_POLICY",
    "new_idempotency_key",
]
