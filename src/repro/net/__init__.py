"""In-memory network substrate.

The paper evaluates WhoPay in simulation; this package is the corresponding
stand-in for a real network: a deterministic, instrumented, in-memory
message-passing fabric.  It gives the protocol layer exactly what it needs —
addressed nodes, request/response RPC, offline failures — while counting
every message and byte per entity (the paper's "communication cost" metric,
Figures 7, 9, 11).
"""

from repro.net.node import Node
from repro.net.transport import NetworkError, NodeOffline, Transport, UnknownNode

__all__ = ["Transport", "Node", "NetworkError", "NodeOffline", "UnknownNode"]
