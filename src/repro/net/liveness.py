"""Liveness primitives: heartbeats, phi-accrual failure detection, leases,
and circuit breakers.

The federation's original availability story leaned on a transport trick —
``set_crash_handler`` restarts a shard synchronously *before* the in-flight
sender sees a reply — which no real deployment has.  This module supplies
the mechanisms a real one does have:

* **Heartbeats** (:data:`HEARTBEAT`): shards emit seeded-clock beats over
  the ordinary :class:`~repro.net.rpc.RpcClient` path to a monitor node,
  which answers with its *last-seen table* so emitters gossip a shared view
  of who is alive.
* **Phi-accrual detection** (:class:`PhiAccrualDetector`): instead of a
  binary timeout, suspicion is a continuous level
  ``phi = elapsed / (mean_interarrival * ln 10)`` — the classic
  Hayashibara-style accrual statistic specialized to an exponential
  inter-arrival model, which keeps it deterministic under the virtual
  clock (no variance estimation, no wall-clock noise).  ``phi`` crossing a
  configurable threshold marks the endpoint dead.
* **Leases** (:class:`LeaseTable`): a restart is only safe once the dead
  shard's lease has lapsed; a slow-but-alive shard whose beats still renew
  the lease is never double-driven.
* **Circuit breakers** (:class:`CircuitBreaker`/:class:`BreakerBoard`):
  per-destination closed → open → half-open state machines with seeded
  probe scheduling, consulted by the RPC layer so callers short-circuit a
  tripped destination instead of burning their retry budget on it.

Everything here runs on the simulation's virtual clock and seeded RNGs —
no wall time, no process entropy — so chaos runs replay bit-identically.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass

#: Wire kind for shard-to-monitor heartbeats.  Payload:
#: ``{"seq": int, "now": float}`` (the emitter's virtual send time); reply:
#: ``{"ok": True, "last_seen": {address: float}}`` — the monitor's gossip
#: table, merged by the emitter into its own view.
HEARTBEAT = "liveness.heartbeat"

LN10 = math.log(10.0)

#: Detector states (see :meth:`PhiAccrualDetector.state`).
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass(frozen=True)
class LivenessConfig:
    """Deterministic, test-controllable liveness parameters.

    ``phi_threshold`` is the accrual level at which an endpoint is declared
    dead; ``suspect_fraction`` of it marks the earlier SUSPECT state.
    ``mean_ceiling`` caps the detector's inter-arrival estimate at
    ``heartbeat_interval * mean_ceiling`` so lost beats cannot inflate the
    mean without bound — it is what makes :meth:`detection_window` a hard
    guarantee rather than an expectation.
    """

    heartbeat_interval: float = 0.5
    phi_threshold: float = 4.0
    window: int = 16
    lease_duration: float = 2.0
    suspect_fraction: float = 0.5
    mean_ceiling: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.phi_threshold <= 0:
            raise ValueError("phi_threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.lease_duration <= 0:
            raise ValueError("lease_duration must be positive")
        if not 0.0 < self.suspect_fraction < 1.0:
            raise ValueError("suspect_fraction must be in (0, 1)")
        if self.mean_ceiling < 1.0:
            raise ValueError("mean_ceiling must be >= 1")

    def detection_window(self) -> float:
        """Worst-case virtual seconds from last beat to a DEAD verdict.

        ``phi`` reaches the threshold once ``elapsed >= phi_threshold *
        ln(10) * mean`` and the mean estimate is capped at
        ``heartbeat_interval * mean_ceiling``, so this bound holds for any
        arrival history.  Callers add their own polling quantum on top.
        """
        return self.phi_threshold * LN10 * self.heartbeat_interval * self.mean_ceiling


class PhiAccrualDetector:
    """Accrual failure detector over heartbeat arrival times.

    Tracks, per monitored address, the last arrival and a sliding window of
    inter-arrival gaps.  Suspicion ``phi(address, now)`` grows continuously
    with silence; :meth:`state` quantizes it to ALIVE / SUSPECT / DEAD.
    Deterministic by construction: the only inputs are the virtual
    timestamps fed to :meth:`observe`.
    """

    def __init__(self, config: LivenessConfig) -> None:
        self.config = config
        self._last: dict[str, float] = {}
        self._gaps: dict[str, deque[float]] = {}
        self.observations = 0

    def monitored(self) -> list[str]:
        """Addresses under watch, in sorted (deterministic) order."""
        return sorted(self._last)

    def expect(self, address: str, now: float) -> None:
        """Start monitoring ``address`` with a synthetic arrival at ``now``."""
        if address not in self._last:
            self._last[address] = now
            self._gaps[address] = deque(maxlen=self.config.window)

    def forget(self, address: str) -> None:
        """Stop monitoring ``address`` (e.g. a decommissioned shard)."""
        self._last.pop(address, None)
        self._gaps.pop(address, None)

    def observe(self, address: str, now: float) -> None:
        """Record a heartbeat arrival from ``address`` at virtual ``now``."""
        self.observations += 1
        previous = self._last.get(address)
        if previous is None:
            self.expect(address, now)
            return
        if now > previous:
            self._gaps[address].append(now - previous)
            self._last[address] = now

    def reset(self, address: str, now: float) -> None:
        """Forget history after a restart: fresh baseline, empty window."""
        self.forget(address)
        self.expect(address, now)

    def last_seen(self, address: str) -> float | None:
        """Virtual time of the last arrival (or synthetic baseline)."""
        return self._last.get(address)

    def mean_interval(self, address: str) -> float:
        """Bounded inter-arrival estimate: window mean, floored at the
        configured interval and capped at ``interval * mean_ceiling``."""
        interval = self.config.heartbeat_interval
        gaps = self._gaps.get(address)
        mean = sum(gaps) / len(gaps) if gaps else interval
        return min(max(mean, interval), interval * self.config.mean_ceiling)

    def phi(self, address: str, now: float) -> float:
        """Suspicion level for ``address`` at virtual ``now`` (0 = fresh)."""
        last = self._last.get(address)
        if last is None:
            return 0.0
        elapsed = max(now - last, 0.0)
        return elapsed / (self.mean_interval(address) * LN10)

    def state(self, address: str, now: float) -> str:
        """Quantized verdict: ALIVE, SUSPECT, or DEAD."""
        level = self.phi(address, now)
        if level >= self.config.phi_threshold:
            return DEAD
        if level >= self.config.phi_threshold * self.config.suspect_fraction:
            return SUSPECT
        return ALIVE

    def snapshot(self) -> dict[str, float]:
        """The last-seen table, for gossip replies (sorted for determinism)."""
        return {address: self._last[address] for address in sorted(self._last)}

    def merge(self, table: dict[str, float]) -> None:
        """Fold a gossiped last-seen table into this view (freshest wins)."""
        for address in sorted(table):
            seen = float(table[address])
            known = self._last.get(address)
            if known is None:
                self.expect(address, seen)
            elif seen > known:
                self.observe(address, seen)


class LeaseTable:
    """Per-address liveness leases, renewed by heartbeat arrivals.

    The failover gate: a shard declared dead by the detector may still be
    restarted only after its lease has lapsed.  A slow-but-alive shard
    whose occasional beats keep renewing the lease is therefore never
    double-driven, however suspicious the detector gets.
    """

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.duration = duration
        self._expires: dict[str, float] = {}

    def renew(self, address: str, now: float) -> float:
        """Extend ``address``'s lease to ``now + duration``; returns expiry."""
        expires = now + self.duration
        if expires > self._expires.get(address, float("-inf")):
            self._expires[address] = expires
        return self._expires[address]

    def expires_at(self, address: str) -> float | None:
        """Current expiry, or ``None`` if no lease was ever granted."""
        return self._expires.get(address)

    def expired(self, address: str, now: float) -> bool:
        """True iff the lease has lapsed (an unknown address is lapsed)."""
        expires = self._expires.get(address)
        return expires is None or now >= expires


# -- circuit breakers ---------------------------------------------------------

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Per-destination circuit-breaker parameters.

    ``failure_threshold`` consecutive failures trip CLOSED → OPEN; the
    breaker stays open for ``reset_timeout`` virtual seconds (stretched by
    up to ``probe_jitter`` fraction, drawn from the board's seeded RNG so
    probe schedules never synchronize across clients yet replay
    bit-identically), then admits a single HALF_OPEN probe: success
    re-closes, failure re-opens.
    """

    failure_threshold: int = 3
    reset_timeout: float = 2.0
    probe_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.probe_jitter < 0:
            raise ValueError("probe_jitter must be >= 0")


@dataclass
class BreakerStats:
    """Telemetry one breaker accumulates (tests assert trips happened)."""

    failures: int = 0
    successes: int = 0
    opens: int = 0
    short_circuits: int = 0
    probes: int = 0


class CircuitBreaker:
    """One destination's CLOSED / OPEN / HALF_OPEN state machine.

    Driven entirely by its caller: :meth:`allow` before a call (False means
    short-circuit — do not even attempt), then exactly one of
    :meth:`record_success` / :meth:`record_failure` with the outcome.
    """

    def __init__(self, config: BreakerConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self.state = CLOSED
        self.consecutive_failures = 0
        self.retry_at = 0.0
        self.stats = BreakerStats()

    def _schedule_probe(self, now: float) -> None:
        stretch = 1.0 + self.config.probe_jitter * self._rng.random()
        self.retry_at = now + self.config.reset_timeout * stretch

    def allow(self, now: float) -> bool:
        """May a call proceed at virtual ``now``?  (False = short-circuit.)"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self.retry_at:
                self.state = HALF_OPEN
                self.stats.probes += 1
                return True
            self.stats.short_circuits += 1
            return False
        # HALF_OPEN: one probe is already in flight this cycle; further
        # calls short-circuit until its outcome is recorded.
        self.stats.short_circuits += 1
        return False

    def record_success(self, now: float) -> None:
        """The attempted call succeeded: re-close (or stay closed)."""
        self.stats.successes += 1
        self.consecutive_failures = 0
        self.state = CLOSED

    def record_failure(self, now: float) -> None:
        """The attempted call failed: count toward (or confirm) the trip."""
        self.stats.failures += 1
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.stats.opens += 1
            self._schedule_probe(now)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and self.consecutive_failures >= self.config.failure_threshold:
            self.state = OPEN
            self.stats.opens += 1
            self._schedule_probe(now)


class BreakerBoard:
    """Per-destination breakers behind one seeded RNG.

    The surface the RPC layer consults: :meth:`preflight` before any
    attempt, :meth:`on_success` / :meth:`on_failure` with the call's final
    outcome.  Breakers are created lazily per destination.
    """

    def __init__(self, config: BreakerConfig | None = None, seed: int = 0) -> None:
        self.config = config or BreakerConfig()
        self._rng = random.Random(seed)
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, dst: str) -> CircuitBreaker:
        """The breaker guarding ``dst`` (created CLOSED on first use)."""
        found = self._breakers.get(dst)
        if found is None:
            found = CircuitBreaker(self.config, self._rng)
            self._breakers[dst] = found
        return found

    def preflight(self, dst: str, now: float) -> bool:
        """True iff a call to ``dst`` may proceed at virtual ``now``."""
        return self.breaker(dst).allow(now)

    def on_success(self, dst: str, now: float) -> None:
        """Record a successful call outcome for ``dst``."""
        self.breaker(dst).record_success(now)

    def on_failure(self, dst: str, now: float) -> None:
        """Record a failed call outcome for ``dst``."""
        self.breaker(dst).record_failure(now)

    def open_destinations(self) -> list[str]:
        """Destinations currently tripped (OPEN or HALF_OPEN), sorted."""
        return sorted(
            dst for dst, brk in self._breakers.items() if brk.state != CLOSED
        )

    def states(self) -> dict[str, str]:
        """Current state per known destination (sorted, for health exports)."""
        return {dst: self._breakers[dst].state for dst in sorted(self._breakers)}


__all__ = [
    "ALIVE",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerStats",
    "CLOSED",
    "CircuitBreaker",
    "DEAD",
    "HALF_OPEN",
    "HEARTBEAT",
    "LN10",
    "LeaseTable",
    "LivenessConfig",
    "OPEN",
    "PhiAccrualDetector",
    "SUSPECT",
]
