"""Fault-tolerant RPC on top of the raw transport.

Three pieces:

* :class:`RetryPolicy` — bounded exponential backoff with jitter and a
  per-call virtual-time budget;
* :class:`RpcClient` — issues a request under a policy, retrying the
  transient transport failures (:class:`MessageDropped`,
  :class:`ReplyLost`, :class:`LinkPartitioned`) and tagging retried calls
  with an idempotency key so the destination can deduplicate;
* :class:`ReplayCache` — the bounded, LRU-evicting dedupe table a
  :class:`~repro.net.node.Node` consults before dispatching an
  idempotency-keyed request.

The at-most-once/at-least-once ambiguity this resolves: when a reply is
lost the caller cannot know whether the handler ran.  Retrying with the
same idempotency key turns the exchange into exactly-once *in ledger
effects* — the first successful execution is cached and every retry (or
network duplicate) of the same key is answered from the cache without
re-running the handler.

Wire format: a retried call wraps its payload as
``{"__rpc__": 1, "idem": key, "body": payload}``.  Single-attempt policies
(the default everywhere) send the payload untouched, so default traffic is
byte-identical to the pre-RPC wire format.

Backoff never sleeps and never advances the shared :class:`Clock` (that
would age coins toward expiry); waits accrue to the transport's
``virtual_latency_accrued``, the same place per-hop latency goes.
"""

from __future__ import annotations

import random
import secrets
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.net.transport import (
    LinkPartitioned,
    MessageDropped,
    NetworkError,
    NodeOffline,
    ReplyLost,
    Transport,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

#: Transport failures where retrying can help: the network lost something.
#: ``NodeOffline`` is deliberately excluded — churn is a protocol-visible
#: condition (the downtime protocol exists for it), not a transient fault.
RETRYABLE_ERRORS = (MessageDropped, ReplyLost, LinkPartitioned)

_ENVELOPE_TAG = "__rpc__"


class RpcError(NetworkError):
    """Base class for RPC-layer failures (a kind of network failure)."""

    def __init__(self, message: str, attempts: int = 0, last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class RetriesExhausted(RpcError):
    """Every attempt allowed by the policy failed with a retryable error."""


class RpcTimeout(RpcError):
    """The call's virtual-time budget ran out before the next retry."""


class CircuitOpen(RpcError):
    """The destination's circuit breaker is open: the call was never sent.

    Raised by :meth:`RpcClient.call` *before* any attempt when the client
    carries a :class:`~repro.net.liveness.BreakerBoard` and the breaker for
    the destination refuses the call — so a tripped destination consumes no
    retry budget and accrues no backoff.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently one call fights the network.

    ``max_attempts=1`` (the default) means no retries at all — raw
    transport semantics, raw wire format.  Backoff before attempt *n+1* is
    ``min(base_delay * multiplier**(n-1), max_delay)`` stretched by up to
    ``jitter`` (a fraction, drawn uniformly), accrued as virtual latency.
    ``timeout`` bounds the *total* backoff a call may accrue;
    ``retry_offline`` opts churn (:class:`NodeOffline`) into retrying,
    which protocol code never wants but infrastructure sweeps may.
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    timeout: float | None = None
    retry_offline: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Virtual seconds to wait after failed attempt ``attempt`` (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        return delay * (1.0 + self.jitter * rng.random())


#: Raw transport semantics: one attempt, unwrapped payloads.
DEFAULT_POLICY = RetryPolicy()

#: A reasonable chaos-survival policy: six attempts, capped backoff.
RESILIENT_POLICY = RetryPolicy(max_attempts=6, base_delay=0.05, multiplier=2.0, max_delay=1.0)


def new_idempotency_key() -> str:
    """A fresh, unguessable idempotency key (one per logical operation)."""
    return secrets.token_hex(8)


def wrap_idempotent(payload: Any, key: str) -> dict[str, Any]:
    """The wire envelope for an idempotency-keyed request."""
    return {_ENVELOPE_TAG: 1, "idem": key, "body": payload}


def unwrap_idempotent(payload: Any) -> tuple[str | None, Any]:
    """``(key, body)`` if ``payload`` is a keyed envelope, else ``(None, payload)``."""
    if isinstance(payload, dict) and payload.get(_ENVELOPE_TAG) == 1 and "idem" in payload:
        return payload["idem"], payload.get("body")
    return None, payload


class ReplayCache:
    """Bounded LRU map from (kind, idempotency key) to a cached result.

    Only *successful* results are stored: a handler exception leaves no
    entry, so a retry after an application-level failure re-runs the
    handler cleanly.  Eviction is LRU with a hard capacity bound — the
    cache cannot grow without limit under sustained traffic, at the cost
    that a retry arriving after ``capacity`` newer operations re-executes
    (acceptable: retries are near-in-time by construction).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple[str, str]) -> tuple[bool, Any]:
        """``(True, cached_result)`` on a hit, ``(False, None)`` otherwise."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def store(self, key: tuple[str, str], value: Any) -> None:
        """Record a successful result, evicting the oldest entry if full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def snapshot_entries(self) -> list[tuple[tuple[str, str], Any]]:
        """Entries oldest-first, for durable snapshots of dedupe state."""
        return list(self._entries.items())

    def restore_entries(self, items: list[tuple[tuple[str, str], Any]]) -> None:
        """Refill from :meth:`snapshot_entries` output, preserving LRU order."""
        for key, value in items:
            self.store(tuple(key), value)


@dataclass
class RpcStats:
    """Per-client telemetry (chaos tests assert retries actually happened)."""

    calls: int = 0
    retries: int = 0
    recovered: int = 0  # calls that succeeded only after >= 1 retry
    exhausted: int = 0
    timeouts: int = 0
    deadline_exceeded: int = 0  # subset of timeouts caused by a deadline
    short_circuits: int = 0  # calls refused by an open circuit breaker
    backoff_accrued: float = 0.0


class RpcClient:
    """Issues requests under a retry policy.

    Two binding modes:

    * **node-bound** (``RpcClient(node=peer)``): sends via the node's
      ``send_raw`` hook, looked up dynamically per attempt so overlays
      (onion routing) that replace ``send_raw`` capture retries too;
    * **transport-bound** (``RpcClient(transport=t)``): for client-side
      infrastructure that is not itself a node (DHT rings, the
      notification hub); each call names its ``src`` explicitly.

    The backoff RNG is seeded from the node address (or the given seed),
    so retry schedules are deterministic per endpoint.

    ``breakers`` (optional) is a per-destination circuit-breaker board
    (:class:`~repro.net.liveness.BreakerBoard`, duck-typed): every call is
    preflighted against it — an open breaker raises :class:`CircuitOpen`
    before any attempt — and the call's final outcome (success, or failure
    by ``NodeOffline`` / exhaustion / timeout) is recorded back.
    """

    def __init__(
        self,
        node: "Node | None" = None,
        transport: Transport | None = None,
        policy: RetryPolicy | None = None,
        seed: int | None = None,
        breakers: Any = None,
    ) -> None:
        if (node is None) == (transport is None):
            raise ValueError("bind an RpcClient to exactly one of node= or transport=")
        self._node = node
        self._transport = transport if transport is not None else node.transport
        self.policy = policy if policy is not None else DEFAULT_POLICY
        if seed is None:
            ident = node.address if node is not None else "rpc-client"
            seed = zlib.crc32(ident.encode())
        self.rng = random.Random(seed)
        self.stats = RpcStats()
        self.breakers = breakers

    def _now(self) -> float:
        """Virtual time for breaker scheduling (0.0 without a clock)."""
        clock = getattr(self._transport, "clock", None)
        return clock.now() if clock is not None else 0.0

    def _record_outcome(self, dst: str, ok: bool) -> None:
        if self.breakers is None:
            return
        if ok:
            self.breakers.on_success(dst, self._now())
        else:
            self.breakers.on_failure(dst, self._now())

    def _send(self, dst: str, kind: str, payload: Any, src: str | None) -> Any:
        if self._node is not None:
            return self._node.send_raw(dst, kind, payload)
        return self._transport.request(src if src is not None else "rpc-client", dst, kind, payload)

    def call(
        self,
        dst: str,
        kind: str,
        payload: Any,
        *,
        src: str | None = None,
        idempotency_key: str | None = None,
        policy: RetryPolicy | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> Any:
        """Send ``payload`` to ``dst`` as ``kind``, retrying per policy.

        ``timeout`` (virtual seconds of total backoff) overrides the
        policy's.  The idempotency envelope is applied only when the
        effective policy actually retries — single-attempt traffic keeps
        the raw wire format.

        ``deadline`` is a harder bound: the call's total *virtual-time*
        budget, covering backoff **and** every virtual second the transport
        accrues on the call's behalf (per-hop latency, fault-plan jitter,
        nested RPC work inside the handler).  Backoff is clamped so it
        never exceeds the remaining budget, and a reply that lands after
        the budget is spent raises :class:`RpcTimeout` instead of silently
        succeeding late — the caller asked for an answer *in time*, not an
        answer eventually.  ``None`` (the default) means unbounded, the
        pre-deadline behavior.
        """
        active = policy if policy is not None else self.policy
        budget = timeout if timeout is not None else active.timeout
        wire = payload
        if idempotency_key is not None and active.max_attempts > 1:
            wire = wrap_idempotent(payload, idempotency_key)
        if self.breakers is not None and not self.breakers.preflight(dst, self._now()):
            self.stats.short_circuits += 1
            raise CircuitOpen(f"{kind} to {dst}: circuit breaker is open")
        self.stats.calls += 1
        latency_start = self._transport.virtual_latency_accrued
        waited = 0.0
        last: Exception | None = None

        def consumed() -> float:
            return self._transport.virtual_latency_accrued - latency_start

        def deadline_exceeded(attempt: int, detail: str) -> RpcTimeout:
            self.stats.timeouts += 1
            self.stats.deadline_exceeded += 1
            self._record_outcome(dst, ok=False)
            return RpcTimeout(
                f"{kind} to {dst}: deadline {deadline}s exceeded {detail} "
                f"after {attempt} attempt(s)",
                attempts=attempt,
                last_error=last,
            )

        for attempt in range(1, active.max_attempts + 1):
            try:
                result = self._send(dst, kind, wire, src)
            except RETRYABLE_ERRORS as exc:
                last = exc
            except NodeOffline:
                if not active.retry_offline:
                    self._record_outcome(dst, ok=False)
                    raise
                last = NodeOffline(dst)
            else:
                if deadline is not None and consumed() > deadline:
                    # The handler ran, but the reply is too late to use:
                    # jitter/latency spent the budget (idempotency keys make
                    # a later retry of the same operation safe).
                    raise deadline_exceeded(attempt, "(reply arrived late)") from last
                if attempt > 1:
                    self.stats.recovered += 1
                self._record_outcome(dst, ok=True)
                return result
            if attempt == active.max_attempts:
                break
            delay = active.backoff(attempt, self.rng)
            if budget is not None and waited + delay > budget:
                self.stats.timeouts += 1
                self._record_outcome(dst, ok=False)
                raise RpcTimeout(
                    f"{kind} to {dst}: backoff budget {budget}s exhausted after "
                    f"{attempt} attempt(s)",
                    attempts=attempt,
                    last_error=last,
                ) from last
            if deadline is not None:
                remaining = deadline - consumed()
                if remaining <= 0.0:
                    raise deadline_exceeded(attempt, "(no budget left to retry)") from last
                # Budget propagation: never back off past the deadline.
                delay = min(delay, remaining)
            waited += delay
            self.stats.retries += 1
            self.stats.backoff_accrued += delay
            # Accrue, never sleep: the transport tracks what a real client
            # would have waited, without aging the protocol clock.
            self._transport.virtual_latency_accrued += delay
        assert last is not None
        if active.max_attempts == 1:
            # Single-attempt callers asked for raw transport semantics;
            # hand them the raw transport error.
            self._record_outcome(dst, ok=False)
            raise last
        self.stats.exhausted += 1
        self._record_outcome(dst, ok=False)
        raise RetriesExhausted(
            f"{kind} to {dst}: all {active.max_attempts} attempts failed "
            f"({type(last).__name__}: {last})",
            attempts=active.max_attempts,
            last_error=last,
        ) from last
