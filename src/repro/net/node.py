"""Node base class: an addressed, handler-dispatching network endpoint."""

from __future__ import annotations

from typing import Any, Callable

from repro.net.rpc import ReplayCache, RpcClient, unwrap_idempotent
from repro.net.transport import NetworkError, Transport

Handler = Callable[[str, Any], Any]


class Node:
    """An endpoint on a :class:`~repro.net.transport.Transport`.

    Subclasses (peers, the broker, DHT servers, i3 servers) register
    handlers per message kind with :meth:`on`; ``handle`` dispatches.
    The ``online`` flag models churn: while ``False`` the transport
    refuses delivery, exactly like an unreachable host.

    Two resilience hooks live here so every endpoint gets them uniformly:

    * **outbound** — :meth:`request` routes through ``self.rpc`` (an
      :class:`~repro.net.rpc.RpcClient`), whose transport touchpoint is
      :meth:`send_raw`.  Overlays that re-route a node's traffic (onion
      circuits) override ``send_raw``; retries then ride the overlay too.
    * **inbound** — :meth:`handle` consults a bounded
      :class:`~repro.net.rpc.ReplayCache` for idempotency-keyed requests,
      so a retried request whose original reply was lost is answered from
      the cache instead of re-running the handler (exactly-once effects).

    ``replay_capacity`` bounds the dedupe cache; endpoints that serve many
    clients (the broker) pass a larger bound.
    """

    REPLAY_CACHE_CAPACITY = 512

    def __init__(self, transport: Transport, address: str, replay_capacity: int | None = None) -> None:
        self.transport = transport
        self.address = address
        self.online = True
        self._handlers: dict[str, Handler] = {}
        self.replay_cache = ReplayCache(replay_capacity or self.REPLAY_CACHE_CAPACITY)
        self.replays_served = 0
        self.rpc = RpcClient(node=self)
        transport.register(self)

    # -- lifecycle ---------------------------------------------------------

    def go_offline(self) -> None:
        """Leave the network (requests to this node will fail)."""
        self.online = False

    def go_online(self) -> None:
        """Rejoin the network."""
        self.online = True

    # -- dispatch ----------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for message ``kind`` (one handler per kind)."""
        if kind in self._handlers:
            raise ValueError(f"{self.address}: duplicate handler for {kind!r}")
        self._handlers[kind] = handler

    def handle(self, kind: str, src: str, payload: Any) -> Any:
        """Dispatch an incoming request (called by the transport).

        Idempotency-keyed requests are deduplicated: the first successful
        execution is cached under (kind, key) and replayed to retries and
        network duplicates.  Handler exceptions are never cached — a retry
        after an application-level rejection runs the handler again.
        """
        idem, body = unwrap_idempotent(payload)
        if idem is None:
            return self._dispatch(kind, src, payload)
        cache_key = (kind, idem)
        hit, cached = self.replay_cache.lookup(cache_key)
        if hit:
            self.replays_served += 1
            return cached
        result = self._dispatch(kind, src, body)
        self.replay_cache.store(cache_key, result)
        return result

    def _dispatch(self, kind: str, src: str, payload: Any) -> Any:
        try:
            handler = self._handlers[kind]
        except KeyError:
            raise NetworkError(f"{self.address}: no handler for message kind {kind!r}") from None
        return handler(src, payload)

    # -- outbound ----------------------------------------------------------

    def send_raw(self, dst: str, kind: str, payload: Any) -> Any:
        """The node's single transport touchpoint (overlays override this)."""
        return self.transport.request(self.address, dst, kind, payload)

    def request(self, dst: str, kind: str, payload: Any) -> Any:
        """Convenience: send a request from this node (via its RPC client)."""
        return self.rpc.call(dst, kind, payload)
