"""Node base class: an addressed, handler-dispatching network endpoint."""

from __future__ import annotations

from typing import Any, Callable

from repro.net.transport import NetworkError, Transport

Handler = Callable[[str, Any], Any]


class Node:
    """An endpoint on a :class:`~repro.net.transport.Transport`.

    Subclasses (peers, the broker, DHT servers, i3 servers) register
    handlers per message kind with :meth:`on`; ``handle`` dispatches.
    The ``online`` flag models churn: while ``False`` the transport
    refuses delivery, exactly like an unreachable host.
    """

    def __init__(self, transport: Transport, address: str) -> None:
        self.transport = transport
        self.address = address
        self.online = True
        self._handlers: dict[str, Handler] = {}
        transport.register(self)

    # -- lifecycle ---------------------------------------------------------

    def go_offline(self) -> None:
        """Leave the network (requests to this node will fail)."""
        self.online = False

    def go_online(self) -> None:
        """Rejoin the network."""
        self.online = True

    # -- dispatch ----------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for message ``kind`` (one handler per kind)."""
        if kind in self._handlers:
            raise ValueError(f"{self.address}: duplicate handler for {kind!r}")
        self._handlers[kind] = handler

    def handle(self, kind: str, src: str, payload: Any) -> Any:
        """Dispatch an incoming request (called by the transport)."""
        try:
            handler = self._handlers[kind]
        except KeyError:
            raise NetworkError(f"{self.address}: no handler for message kind {kind!r}") from None
        return handler(src, payload)

    def request(self, dst: str, kind: str, payload: Any) -> Any:
        """Convenience: send a request from this node."""
        return self.transport.request(self.address, dst, kind, payload)
