"""Verification worker pool: batch the crypto, isolate the forgeries.

Verifying a downtime request costs one group-signature check plus three
DSA checks; all four have randomized batch forms that amortize to a small
fraction of the scalar cost.  The pool runs those batch verifiers over
chunks of raw request bytes — in the calling process (``workers=0``) or
across forked worker processes — and reports one verdict per request.

The verdicts feed :meth:`repro.core.broker.Broker.mark_preverified`: the
broker skips re-running the *cryptographic* checks for requests the pool
vouched for (keyed by the SHA-256 of the exact bytes, consumed on first
use) while still running every state check itself.  A pool rejection is
deliberately non-fatal — the request simply arrives at the broker without
the mark, the broker re-runs the full scalar checks, and its error message
names the precise failure.  The pool is a pure accelerator: admitting or
rejecting the wrong request changes latency, never the outcome.

Isolation on batch failure: a randomized batch check rejects the whole
batch when any member is forged.  Both layers here fall back to scalar
verification of each batch member, so one forged signature costs one
batch-sized re-check and honest requests in the same batch still pass.

Worker processes are primed once at fork time with the shared parameters
and a serialized copy of the parent's precomputed fixed-base tables
(:func:`repro.crypto.fastexp.export_cache`), so no worker pays the
table-build cost per request.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core import protocol
from repro.core.coin import Coin, CoinBinding
from repro.crypto import fastexp
from repro.crypto.dsa import DsaSignature, dsa_batch_verify, dsa_verify
from repro.crypto.group_signature import (
    GroupPublicKey,
    GroupSignature,
    group_batch_verify,
    group_verify,
)
from repro.crypto.keys import PublicKey
from repro.crypto.params import DlogParams

#: Job kinds: dual-signed holder operations (deposit, downtime transfer,
#: downtime renewal, top-up) vs identity-signed purchase requests.
JOB_HOLDER = "holder"
JOB_PURCHASE = "purchase"


@dataclass(frozen=True)
class _PoolState:
    """Everything a verifier needs, reconstructed once per worker."""

    params: DlogParams
    broker_key: PublicKey
    gpks: dict[int, GroupPublicKey]


def _build_state(spec: tuple[DlogParams, int, tuple[tuple[int, int, tuple[int, ...]], ...]]) -> _PoolState:
    params, broker_y, gpk_rows = spec
    gpks = {
        version: GroupPublicKey(
            params=params,
            opening_key=PublicKey(params=params, y=opening_y),
            roster=tuple(roster),
            version=version,
        )
        for version, opening_y, roster in gpk_rows
    }
    return _PoolState(
        params=params, broker_key=PublicKey(params=params, y=broker_y), gpks=gpks
    )


# Per-worker-process verifier state, set once by the pool initializer.
_WORKER_STATE: _PoolState | None = None


def _init_worker(
    spec: tuple[DlogParams, int, tuple[tuple[int, int, tuple[int, ...]], ...]],
    cache_blob: bytes,
) -> None:
    """Pool initializer: rebuild verifier state and install shared tables."""
    global _WORKER_STATE
    _WORKER_STATE = _build_state(spec)
    if cache_blob:
        fastexp.install_cache(cache_blob)


def _verify_chunk(chunk: list[tuple[str, bytes]]) -> list[bool]:
    """Worker entry point: verdicts for one chunk of ``(job, data)`` pairs."""
    assert _WORKER_STATE is not None, "worker used before initialization"
    return _verify_jobs(_WORKER_STATE, chunk)


def _verify_jobs(state: _PoolState, chunk: Sequence[tuple[str, bytes]]) -> list[bool]:
    """Batch-verify a chunk; scalar fallback isolates any bad signature.

    Structural failures (malformed encodings, wrong signer, unknown roster)
    are plain ``False`` verdicts — the broker will re-derive the precise
    error.  Signature checks are collected into one group-signature batch
    per roster version plus one DSA batch for everything else; a failing
    batch is re-checked member by member so only the forged requests lose
    their verdict.
    """
    results = [False] * len(chunk)
    group_items: dict[int, list[tuple[int, bytes, GroupSignature]]] = {}
    dsa_items: list[tuple[int, tuple[PublicKey, bytes, DsaSignature]]] = []
    for index, (job, data) in enumerate(chunk):
        try:
            if job == JOB_HOLDER:
                envelope = protocol.decode_dual(data, state.params)
                operation = protocol.HolderOperation.from_payload(envelope.payload)
                if envelope.roster_version not in state.gpks:
                    continue
                coin = Coin(cert=protocol.decode_signed(operation.coin_cert, state.params))
                if coin.cert.signer.y != state.broker_key.y or not coin.verify_unsigned():
                    continue
                proof = CoinBinding(
                    signed=protocol.decode_signed(operation.proof_binding, state.params),
                    via_broker=operation.proof_via_broker,
                )
                coin_key = coin.coin_public_key(state.params)
                if not proof.verify_unsigned(coin_key, state.broker_key):
                    continue
                results[index] = True  # provisional; revoked on signature failure
                group_items.setdefault(envelope.roster_version, []).append(
                    (index, envelope.inner.encode(), envelope.group_signature)
                )
                dsa_items.append(
                    (index, (envelope.coin_signer, envelope.inner.payload_bytes, envelope.inner.signature))
                )
                dsa_items.append(
                    (index, (coin.cert.signer, coin.cert.payload_bytes, coin.cert.signature))
                )
                # The broker only checks this signature on the fresh-binding
                # flavour; checking it unconditionally is strictly stronger
                # (a stored via_broker binding carries a valid broker
                # signature, so honest requests are unaffected).
                dsa_items.append(
                    (index, (proof.signed.signer, proof.signed.payload_bytes, proof.signed.signature))
                )
            elif job == JOB_PURCHASE:
                signed = protocol.decode_signed(data, state.params)
                results[index] = True
                dsa_items.append(
                    (index, (signed.signer, signed.payload_bytes, signed.signature))
                )
        except (ValueError, KeyError, TypeError):
            continue
    for version, entries in group_items.items():
        gpk = state.gpks[version]
        if not group_batch_verify(gpk, [(message, sig) for _, message, sig in entries]):
            for index, message, sig in entries:
                if not group_verify(gpk, message, sig):
                    results[index] = False
    if dsa_items and not dsa_batch_verify([item for _, item in dsa_items]):
        for index, (signer, payload, signature) in dsa_items:
            if not dsa_verify(signer, payload, signature):
                results[index] = False
    return results


class VerificationPool:
    """Drains ``(job, data)`` envelopes into batched signature verification.

    ``workers=0`` verifies inline in the calling process (still batched —
    on a single-core host this is the fastest configuration, since it skips
    inter-process pickling).  ``workers>=1`` forks that many worker
    processes, each primed by :func:`_init_worker` with the group rosters,
    the broker key, and the parent's exported fixed-base table cache.
    """

    def __init__(
        self,
        params: DlogParams,
        broker_key: PublicKey,
        gpks: Sequence[GroupPublicKey],
        workers: int = 0,
        chunk_size: int = 32,
        share_tables: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.jobs_verified = 0
        spec = (
            params,
            broker_key.y,
            tuple(
                (gpk.version, gpk.opening_key.y, tuple(gpk.roster)) for gpk in gpks
            ),
        )
        #: Size of the serialized fixed-base cache shipped to workers.
        self.cache_blob_bytes = 0
        self._pool: Any = None
        self._state: _PoolState | None = None
        if workers > 0:
            blob = fastexp.export_cache() if share_tables else b""
            self.cache_blob_bytes = len(blob)
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            self._pool = context.Pool(
                workers, initializer=_init_worker, initargs=(spec, blob)
            )
        else:
            self._state = _build_state(spec)

    def verify(self, jobs: Sequence[tuple[str, bytes]]) -> list[bool]:
        """One verdict per job, in order.  ``True`` = all signatures valid."""
        if not jobs:
            return []
        self.jobs_verified += len(jobs)
        if self._pool is None:
            assert self._state is not None
            return _verify_jobs(self._state, jobs)
        chunks = [
            list(jobs[start : start + self.chunk_size])
            for start in range(0, len(jobs), self.chunk_size)
        ]
        verdicts: list[bool] = []
        for chunk_result in self._pool.map(_verify_chunk, chunks):
            verdicts.extend(chunk_result)
        return verdicts

    def close(self) -> None:
        """Shut the worker processes down (no-op in inline mode)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "VerificationPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
