"""Broker-side payment throughput pipeline.

The paper sizes the broker by how many downtime operations per second it
can absorb (Figures 6, 10).  This package is the engineering answer for
the real-crypto stack: it decomposes a broker's request loop into the
three stages that dominate cost and batches each one.

* :mod:`repro.pipeline.verify` — a verification worker pool that drains
  request envelopes into batches and runs the randomized batch verifiers
  (:func:`repro.crypto.dsa.dsa_batch_verify`,
  :func:`repro.crypto.group_signature.group_batch_verify`) across worker
  processes, falling back to scalar checks to isolate bad signatures;
* :mod:`repro.pipeline.engine` — the serial broker stage: state checks and
  journaling, with replies released only after a covering group-commit
  fsync (:class:`repro.store.groupcommit.GroupCommitter`);
* :mod:`repro.pipeline.loadgen` — a workload generator that drives many
  peers' transfers, renewals and purchases through the real protocol
  encoders with Zipf-skewed coin popularity.

``benchmarks/bench_throughput.py`` wires the three together and sweeps
worker counts and batch sizes against the one-fsync-per-request scalar
baseline.
"""

from repro.pipeline.engine import EngineStats, ReplyRecord, ThroughputEngine
from repro.pipeline.loadgen import LoadGenerator, Request, WorkloadMix
from repro.pipeline.verify import JOB_HOLDER, JOB_PURCHASE, VerificationPool

__all__ = [
    "EngineStats",
    "JOB_HOLDER",
    "JOB_PURCHASE",
    "LoadGenerator",
    "ReplyRecord",
    "Request",
    "ThroughputEngine",
    "VerificationPool",
    "WorkloadMix",
]
