"""Workload generator: many peers, real envelopes, Zipf-skewed coins.

Drives the broker the way the paper's evaluation does — a population of
peers whose coins circulate by downtime transfer and renewal, salted with
fresh purchases — but through the *real* protocol stack: every request is
a fully signed wire envelope (dual-signed holder operations, identity-
signed purchases) built with the same encoders the peers use.

Request generation is round-based because transfers chain: re-binding a
coin in round ``k`` needs the broker-signed binding returned in round
``k-1``.  The driving loop alternates

    requests = gen.make_round(n)      # untimed: client-side signing
    records, stats = engine.run(requests)   # timed: the broker pipeline
    gen.absorb(records)               # untimed: apply returned bindings

so benchmarks time exactly the broker-side work.  Coin selection is
Zipf-skewed (rank ``r`` drawn with weight ``1/r**s``): a few hot coins
re-transfer every round — which exercises the broker's stored-state
comparison flavour — while the cold tail exercises the fresh-binding
signature path.  All randomness comes from one seeded ``random.Random``,
so a given seed replays the identical workload shape.

The generator plays every client role itself (it holds the coin, holder,
and identity keys), which is what lets it mint thousands of independent
holder envelopes without simulating peer-to-peer exchanges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core import PeerConfig, protocol
from repro.core.coin import Coin, CoinBinding
from repro.core.network import WhoPayNetwork
from repro.crypto.keys import KeyPair
from repro.crypto.params import DlogParams
from repro.messages.envelope import group_seal, seal
from repro.pipeline.engine import ReplyRecord


@dataclass(frozen=True)
class WorkloadMix:
    """Relative operation frequencies (normalized before sampling)."""

    transfer: float = 0.6
    renewal: float = 0.25
    purchase: float = 0.15

    def weights(self) -> tuple[float, float, float]:
        total = self.transfer + self.renewal + self.purchase
        if total <= 0:
            raise ValueError("workload mix must have positive total weight")
        return (self.transfer / total, self.renewal / total, self.purchase / total)


@dataclass(frozen=True)
class Request:
    """One wire request: exactly what the engine feeds the broker."""

    kind: str
    src: str
    data: bytes
    idem: str


@dataclass
class _Held:
    """Generator-side view of one circulating coin."""

    coin: Coin
    binding: CoinBinding
    holder_keypair: KeyPair
    holder_address: str  # whose group member key signs the next envelope


class LoadGenerator:
    """Builds rounds of signed broker requests over a live WhoPay network."""

    def __init__(
        self,
        peers: int = 8,
        coins_per_peer: int = 3,
        value: int = 1,
        params: DlogParams | None = None,
        store_dir: str | Path | None = None,
        seed: int = 7,
        zipf_s: float = 1.1,
        mix: WorkloadMix | None = None,
        balance: int = 1_000_000,
    ) -> None:
        if peers < 1 or coins_per_peer < 1:
            raise ValueError("need at least one peer and one coin per peer")
        self.network = WhoPayNetwork(params=params, store_dir=store_dir)
        self.params = self.network.params
        self.broker = self.network.broker
        self.rng = random.Random(seed)
        self.zipf_s = zipf_s
        self.mix = (mix or WorkloadMix()).weights()
        self.value = value
        self._counter = 0
        self._pending: list[tuple[Any, ...]] = []
        #: coin_y in popularity order: index = Zipf rank (0 = hottest).
        self.coins: list[int] = []
        self.held: dict[int, _Held] = {}
        self._zipf_weights: list[float] = []
        self._peers = [
            self.network.add_peer(f"peer{index:03d}", PeerConfig(balance=balance))
            for index in range(peers)
        ]
        self._gpk = self.network.judge.group_public_key()
        for peer in self._peers:
            for state in peer.purchase_batch(coins_per_peer, value=value):
                self._install_coin(state.coin, state.coin_keypair)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def _install_coin(self, coin: Coin, coin_keypair: KeyPair) -> None:
        """Put a fresh coin into circulation with an owner-signed binding.

        Mirrors the issue flow's outcome (a holder bound by the owner's
        coin-key signature, ``via_broker=False``) without the peer-to-peer
        exchange: the generator holds both sides' keys.
        """
        holder_keypair = KeyPair.generate(self.params)
        binding = CoinBinding.build(
            coin_keypair,
            coin_y=coin.coin_y,
            holder_y=holder_keypair.public.y,
            seq=self.rng.randrange(1, 1 << 30),
            exp_date=self.network.clock.now() + self.network.renewal_period,
        )
        self.held[coin.coin_y] = _Held(
            coin=coin,
            binding=binding,
            holder_keypair=holder_keypair,
            holder_address=self.rng.choice(self._peers).address,
        )
        self.coins.append(coin.coin_y)
        self._zipf_weights.append(1.0 / (len(self.coins) ** self.zipf_s))

    def _pick_coin(self, used: set[int]) -> int | None:
        """Zipf-skewed coin draw, excluding coins already used this round."""
        for _ in range(8):
            coin_y = self.rng.choices(self.coins, weights=self._zipf_weights)[0]
            if coin_y not in used:
                return coin_y
        remaining = [coin_y for coin_y in self.coins if coin_y not in used]
        return self.rng.choice(remaining) if remaining else None

    # ------------------------------------------------------------------
    # request construction
    # ------------------------------------------------------------------

    def _holder_request(self, kind: str, held: _Held, op: str, **fields: Any) -> Request:
        operation = protocol.HolderOperation(
            op=op,
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=held.binding.via_broker,
            **fields,
        )
        member = self.network.peers[held.holder_address].member_key
        envelope = group_seal(
            held.holder_keypair, member, self._gpk, operation.to_payload()
        )
        return self._request(kind, held.holder_address, protocol.encode_dual(envelope))

    def _request(self, kind: str, src: str, data: bytes) -> Request:
        self._counter += 1
        return Request(kind=kind, src=src, data=data, idem=f"lg-{self._counter}")

    def make_round(self, ops: int) -> list[Request]:
        """Generate ``ops`` signed requests (client-side work — untimed).

        Each coin appears at most once per round: its next binding is only
        known after the broker replies, so chained operations on a hot coin
        land in consecutive rounds.
        """
        if self._pending:
            raise RuntimeError("previous round not absorbed yet")
        requests: list[Request] = []
        used: set[int] = set()
        for _ in range(ops):
            op = self.rng.choices(("transfer", "renewal", "purchase"), weights=self.mix)[0]
            coin_y = None if op == "purchase" else self._pick_coin(used)
            if coin_y is None:
                op = "purchase"
            if op == "purchase":
                peer = self.rng.choice(self._peers)
                coin_keypair = KeyPair.generate(self.params)
                purchase = protocol.PurchaseRequest(
                    coin_y=coin_keypair.public.y, value=self.value, account=peer.address
                )
                data = seal(peer.identity, purchase.to_payload()).encode()
                requests.append(self._request(protocol.PURCHASE, peer.address, data))
                self._pending.append(("purchase", coin_keypair))
                continue
            assert coin_y is not None
            used.add(coin_y)
            held = self.held[coin_y]
            if op == "transfer":
                new_holder = KeyPair.generate(self.params)
                new_address = self.rng.choice(self._peers).address
                requests.append(
                    self._holder_request(
                        protocol.DOWNTIME_TRANSFER,
                        held,
                        "transfer",
                        new_holder_y=new_holder.public.y,
                    )
                )
                self._pending.append(("transfer", coin_y, new_holder, new_address))
            else:
                requests.append(
                    self._holder_request(protocol.DOWNTIME_RENEWAL, held, "renewal")
                )
                self._pending.append(("renewal", coin_y))
        return requests

    # ------------------------------------------------------------------
    # reply absorption
    # ------------------------------------------------------------------

    def absorb(self, records: list[ReplyRecord]) -> int:
        """Apply the broker's replies to the generator's coin state.

        Returns how many replies updated state.  Records that were rejected
        or whose reply was never released (crash before the covering fsync)
        leave the local view untouched — the client never saw a reply, so
        it retries from its previous binding, exactly the recovery story.
        """
        pending, self._pending = self._pending, []
        if len(records) != len(pending):
            raise ValueError("absorb needs exactly the records of the last round")
        applied = 0
        for record, entry in zip(records, pending):
            if not record.ok or not record.released:
                continue
            applied += 1
            if entry[0] == "purchase":
                _tag, coin_keypair = entry
                coin = Coin(cert=protocol.decode_signed(record.reply, self.params))
                self._install_coin(coin, coin_keypair)
            elif entry[0] == "transfer":
                _tag, coin_y, new_holder, new_address = entry
                held = self.held[coin_y]
                held.binding = CoinBinding(
                    signed=protocol.decode_signed(record.reply, self.params),
                    via_broker=True,
                )
                held.holder_keypair = new_holder
                held.holder_address = new_address
            else:  # renewal: same holder, broker-signed binding with fresh seq
                _tag, coin_y = entry
                held = self.held[coin_y]
                held.binding = CoinBinding(
                    signed=protocol.decode_signed(record.reply, self.params),
                    via_broker=True,
                )
        return applied
