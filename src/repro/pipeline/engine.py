"""The serial broker stage: verify in batches, commit in groups.

:class:`ThroughputEngine` drives a broker through a stream of raw
requests with the two batched accelerators wired in:

1. each verify-batch of requests goes to the :class:`~repro.pipeline.verify.VerificationPool`
   first; the digests of the requests that pass are handed to
   :meth:`~repro.core.broker.Broker.mark_preverified`, so the broker's
   handlers skip re-running the signature checks;
2. with a :class:`~repro.store.groupcommit.GroupCommitter` attached, the
   broker stages each request's journal record instead of fsyncing it, and
   the engine *holds the reply* until the committer's covering fsync runs
   the record's ``on_durable`` callback;
3. reply *signing* is batched too: the engine owns a
   :class:`~repro.crypto.dsa.DsaNoncePool` and tops it up once per drained
   batch with exactly as many precomputed ``(k, g^k, k^-1)`` triples as the
   batch has binding-minting requests, so each broker-signed reply binding
   costs two modular multiplications instead of an exponentiation plus an
   inversion.

Holding replies is what preserves the PR-4 write-ahead discipline under
group commit: a client never observes a reply whose mutations are not yet
durable, so a crash between staging and fsync loses the whole batch
atomically and every affected client simply retries — the same lost-reply
story as the per-request path, amortized.

The engine is deterministic and single-threaded (lint rule WP102 keeps
wall clocks out of ``repro.*``): time-based flushing comes from the
committer's injected timer via :meth:`~repro.store.groupcommit.GroupCommitter.due`,
checked once per request.

One accepted edge: a replay-cache hit for a retried request releases the
cached reply immediately even if the original's batch is still pending —
the transport only retries after a reply was actually lost (crash or
drop), at which point the original batch has either been flushed or
discarded by recovery, so the live engine never hits that window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core import protocol
from repro.core.broker import Broker
from repro.core.errors import ProtocolError
from repro.crypto.dsa import DsaNoncePool
from repro.net.rpc import wrap_idempotent
from repro.pipeline.verify import JOB_HOLDER, JOB_PURCHASE, VerificationPool
from repro.store.groupcommit import GroupCommitter

#: Which pool job, if any, verifies each broker request kind.
_JOB_FOR_KIND = {
    protocol.DEPOSIT: JOB_HOLDER,
    protocol.DOWNTIME_TRANSFER: JOB_HOLDER,
    protocol.DOWNTIME_RENEWAL: JOB_HOLDER,
    protocol.TOP_UP: JOB_HOLDER,
    protocol.PURCHASE: JOB_PURCHASE,
    protocol.PURCHASE_BATCH: JOB_PURCHASE,
}

#: Request kinds whose reply carries a freshly broker-signed binding.
_BINDING_KINDS = frozenset({protocol.DOWNTIME_TRANSFER, protocol.DOWNTIME_RENEWAL})


@dataclass
class ReplyRecord:
    """Outcome of one request, in submission order.

    ``released`` is the durability gate: an accepted reply may be shown to
    its client only once ``released`` is True, which the engine sets from
    the group-commit ``on_durable`` callback (immediately, for requests
    that staged nothing or when no committer is attached).
    """

    kind: str
    idem: str | None
    ok: bool = False
    reply: Any = None
    error: str | None = None
    released: bool = False
    durable_lsn: int | None = None


@dataclass
class EngineStats:
    """Counters for one :meth:`ThroughputEngine.run`."""

    processed: int = 0
    accepted: int = 0
    rejected: int = 0
    staged: int = 0  # requests whose journal record went through the committer/store
    fsyncs: int = 0
    pool_jobs: int = 0
    preverified: int = 0
    nonces_pooled: int = 0  # signing nonces precomputed for batch reply signing

    def merge(self, other: "EngineStats") -> None:
        """Accumulate another run's counters into this one."""
        self.processed += other.processed
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.staged += other.staged
        self.fsyncs += other.fsyncs
        self.pool_jobs += other.pool_jobs
        self.preverified += other.preverified
        self.nonces_pooled += other.nonces_pooled


class ThroughputEngine:
    """Run raw broker requests through pool verification and group commit.

    Requests are ``(kind, src, data, idem)`` tuples — the exact arguments a
    transport delivery would carry, with ``idem`` the retry key (``None``
    sends the request un-wrapped, outside the replay cache).
    """

    def __init__(
        self,
        broker: Broker,
        pool: VerificationPool | None = None,
        committer: GroupCommitter | None = None,
        verify_batch: int = 32,
    ) -> None:
        if verify_batch < 1:
            raise ValueError("verify_batch must be >= 1")
        if committer is not None and broker.store is None:
            raise ValueError("group commit needs a broker with a durable store")
        self.broker = broker
        self.pool = pool
        self.committer = committer
        self.verify_batch = verify_batch
        # The broker stages into this committer (or appends per request if None).
        broker.committer = committer
        # Batch reply signing: the broker draws signing nonces for reply
        # bindings from this pool, which the engine tops up once per drained
        # batch (fixed-base exponentiation + one Montgomery batch inversion)
        # instead of paying a fresh exponentiation inside every handler.
        self.nonce_pool = DsaNoncePool(broker.keypair)
        broker.nonce_pool = self.nonce_pool

    def run(
        self, requests: Iterable[tuple[str, str, bytes, str | None]]
    ) -> tuple[list[ReplyRecord], EngineStats]:
        """Process every request; returns per-request records and counters.

        All staged records are flushed before returning, so every accepted
        record in the result is ``released``.  A :class:`SimulatedCrash`
        (or any non-protocol error) propagates with staged-but-unflushed
        replies still unreleased — exactly the state a real crash leaves.
        """
        stats = EngineStats()
        records: list[ReplyRecord] = []
        batch: list[tuple[str, str, bytes, str | None]] = []
        flushes_before = 0 if self.committer is None else self.committer.flushes

        def drain() -> None:
            if not batch:
                return
            self._preverify(batch, stats)
            bindings = sum(1 for kind, _src, _data, _idem in batch if kind in _BINDING_KINDS)
            if bindings:
                stats.nonces_pooled += self.nonce_pool.ensure(bindings)
            for kind, src, data, idem in batch:
                records.append(self._handle_one(kind, src, data, idem, stats))
            batch.clear()

        for request in requests:
            batch.append(request)
            if len(batch) >= self.verify_batch:
                drain()
        drain()
        if self.committer is not None:
            self.committer.flush()
            stats.fsyncs = self.committer.flushes - flushes_before
        else:
            stats.fsyncs = stats.staged
        return records, stats

    def _preverify(
        self, batch: Sequence[tuple[str, str, bytes, str | None]], stats: EngineStats
    ) -> None:
        """Pool-verify one batch and mark the passing digests on the broker."""
        if self.pool is None:
            return
        jobs = [
            (_JOB_FOR_KIND[kind], data)
            for kind, _src, data, _idem in batch
            if kind in _JOB_FOR_KIND
        ]
        if not jobs:
            return
        verdicts = self.pool.verify(jobs)
        stats.pool_jobs += len(jobs)
        digests = {
            hashlib.sha256(data).digest()
            for (_job, data), passed in zip(jobs, verdicts)
            if passed
        }
        stats.preverified += len(digests)
        self.broker.mark_preverified(digests)

    def _handle_one(
        self, kind: str, src: str, data: bytes, idem: str | None, stats: EngineStats
    ) -> ReplyRecord:
        record = ReplyRecord(kind=kind, idem=idem)
        stats.processed += 1
        payload: Any = data if idem is None else wrap_idempotent(data, idem)

        def release(lsn: int) -> None:
            record.released = True
            record.durable_lsn = lsn

        if self.committer is not None:
            self.broker.on_durable = release
        try:
            result = self.broker.handle(kind, src, payload)
        except ProtocolError as exc:
            # Rejections stage nothing, so the error reply needs no fsync.
            record.error = f"{type(exc).__name__}: {exc}"
            record.released = True
            stats.rejected += 1
        else:
            record.ok = True
            record.reply = result
            stats.accepted += 1
            if self.broker.store is not None and self.broker.last_request_staged:
                stats.staged += 1
                if self.committer is None:
                    record.released = True  # fsynced inside handle()
                # else: released by the covering flush's callback (which may
                # already have run, if staging tripped the max_batch flush).
            else:
                record.released = True  # read-only request: nothing to make durable
        finally:
            self.broker.on_durable = None
        if self.committer is not None and self.committer.due():
            self.committer.flush()
        return record
