"""Crash-consistent durability for brokers and wallets.

The paper's central trust assumption is that the broker's monetary state
survives failures: losing an account destroys money, losing the deposited
ledger re-enables double spending.  This package provides the machinery a
production deployment would put under that assumption:

* :mod:`repro.store.journal` — an append-only write-ahead journal with
  length-prefixed, SHA-256-checksummed records plus atomic
  write-temp-then-rename snapshots and log compaction;
* :mod:`repro.store.crashpoints` — deterministic crash injection at every
  fsync boundary, so tests can kill the broker at each point where a real
  process could die;
* :mod:`repro.store.groupcommit` — group commit: stage many records, fsync
  them as one atomic group frame, release replies only afterwards;
* :mod:`repro.store.apply` — the single mutation-application layer shared
  by the live broker path and recovery replay (the only code outside
  :mod:`repro.core.persistence` allowed to touch durable broker fields —
  lint rule WP106 enforces this);
* :mod:`repro.store.records` — canonical wallet-entry serializers shared
  by peer journaling and :mod:`repro.core.persistence`;
* :mod:`repro.store.recovery` — rebuilds a broker or peer from
  snapshot + replay and re-verifies every replayed signature;
* :mod:`repro.store.audit` — the post-recovery invariant auditor.

See ``docs/DURABILITY.md`` for the journal format and crash-point model.
"""

from repro.store.crashpoints import CrashPointPlan, SimulatedCrash
from repro.store.groupcommit import GroupCommitter
from repro.store.journal import DurableStore, JournalCorrupt

__all__ = [
    "CrashPointPlan",
    "DurableStore",
    "GroupCommitter",
    "JournalCorrupt",
    "SimulatedCrash",
]
