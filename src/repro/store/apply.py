"""The broker's mutation-application layer.

Every durable broker mutation is described by a small codec-encodable dict
(a *mutation record*) and applied by exactly one function here.  The live
broker path stages a mutation and applies it through this module before
replying; recovery replays the same records through the same functions —
so replay equivalence is structural, not hoped-for.  Lint rule WP106
enforces that no other module (besides :mod:`repro.core.persistence`)
touches the durable fields directly.

Mutation types:

``broker_init``        address + signing key (first record of a fresh store)
``open_account``       out-of-protocol account creation (value enters here)
``mint``               purchase / batch purchase: debit + new coin certs
``deposit``            retire a coin, credit (or open) the payout account
``downtime_binding``   downtime transfer/renewal: record binding + pending sync
``top_up``             re-mint a coin at a higher value, debit the funder
``sync_consumed``      an owner's pending-sync set was delivered and cleared
``handoff_begin``      cross-shard intent journaled before the prepare RPC
``handoff_commit``     cross-shard source-side effects (pops the pending record)
``handoff_abort``      destination rejected: drop the pending record
``xshard_apply``       cross-shard destination-side effects (mint/credit/debit/unmint)

Federation conservation: ``total_opened`` is per-shard, so every cross-shard
mutation adjusts it by the value that crossed the shard boundary — each
shard then conserves *locally* at every crash point, and the shard-wide sum
equals the externally opened value once no handoffs are in flight.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.core.coin import Coin, CoinBinding
from repro.core.protocol import decode_signed
from repro.crypto.keys import KeyPair, PublicKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import Broker


class UnknownMutation(Exception):
    """A journal record names a mutation type this code cannot apply."""


def _apply_broker_init(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.keypair = KeyPair.from_secret(broker.params, mut["signing_x"])


def _apply_open_account(broker: "Broker", mut: dict[str, Any]) -> None:
    from repro.core.broker import Account

    broker.accounts[mut["name"]] = Account(
        identity=PublicKey(params=broker.params, y=mut["identity_y"]),
        balance=mut["balance"],
    )
    broker.total_opened += mut["balance"]


def _apply_mint(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.accounts[mut["account"]].balance -= mut["debit"]
    for coin_bytes in mut["coins"]:
        coin = Coin(cert=decode_signed(coin_bytes, broker.params))
        broker.valid_coins[coin.coin_y] = coin
        owner = coin.owner_address
        if owner is not None:
            broker.owner_coins.setdefault(owner, set()).add(coin.coin_y)


def _apply_deposit(broker: "Broker", mut: dict[str, Any]) -> None:
    from repro.core.broker import Account

    coin_y = mut["coin_y"]
    broker.deposited[coin_y] = mut["envelope"]
    broker.downtime_bindings.pop(coin_y, None)
    payout = broker.accounts.get(mut["payout_to"])
    if payout is None:
        broker.accounts[mut["payout_to"]] = Account(
            identity=PublicKey(params=broker.params, y=mut["payout_identity_y"]),
            balance=mut["credited"],
        )
    else:
        payout.balance += mut["credited"]


def _apply_downtime_binding(broker: "Broker", mut: dict[str, Any]) -> None:
    binding = CoinBinding(
        signed=decode_signed(mut["binding"], broker.params), via_broker=True
    )
    broker.downtime_bindings[mut["coin_y"]] = binding
    if mut["owner"] is not None:
        broker.pending_sync.setdefault(mut["owner"], set()).add(mut["coin_y"])


def _apply_top_up(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.accounts[mut["account"]].balance -= mut["delta"]
    coin = Coin(cert=decode_signed(mut["coin"], broker.params))
    broker.valid_coins[coin.coin_y] = coin


def _apply_sync_consumed(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.pending_sync.pop(mut["owner"], None)


def _apply_handoff_begin(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.pending_handoffs[mut["h"]] = mut


def _apply_handoff_abort(broker: "Broker", mut: dict[str, Any]) -> None:
    broker.pending_handoffs.pop(mut["h"], None)


def _apply_handoff_commit(broker: "Broker", mut: dict[str, Any]) -> None:
    record = broker.pending_handoffs.pop(mut["h"], None)
    if record is None:
        # Re-applied commit (retry after the original became durable but the
        # replay cache was refilled oddly); nothing left to do.
        return
    op = record["op"]
    if op == "purchase":
        # Account home: debit for the whole batch, mint the locally-homed
        # coins; value handed to other shards leaves this shard's baseline.
        broker.accounts[record["account"]].balance -= record["debit"]
        for coin_bytes in record["local_coins"]:
            coin = Coin(cert=decode_signed(coin_bytes, broker.params))
            broker.valid_coins[coin.coin_y] = coin
            owner = coin.owner_address
            if owner is not None:
                broker.owner_coins.setdefault(owner, set()).add(coin.coin_y)
        broker.total_opened -= record["remote_value"]
    elif op == "deposit":
        # Coin home: retire the coin; the credited value moved to the payout
        # account's shard.
        coin_y = record["coin_y"]
        broker.deposited[coin_y] = record["envelope"]
        broker.downtime_bindings.pop(coin_y, None)
        broker.total_opened -= record["credited"]
    elif op == "top_up":
        # Coin home: re-mint at the higher value; the delta was debited on
        # the funding account's shard and enters this shard's baseline.
        coin = Coin(cert=decode_signed(record["coin"], broker.params))
        broker.valid_coins[coin.coin_y] = coin
        broker.total_opened += record["delta"]
    else:  # pragma: no cover - handoffs are only begun by the ops above
        raise UnknownMutation(f"no commit applier for handoff op {op!r}")


def _apply_xshard(broker: "Broker", mut: dict[str, Any]) -> None:
    if mut["h"] in broker.handoffs_seen:
        return
    broker.handoffs_seen.add(mut["h"])
    op = mut["op"]
    if op == "mint":
        for coin_bytes in mut["coins"]:
            coin = Coin(cert=decode_signed(coin_bytes, broker.params))
            if coin.coin_y in broker.valid_coins:
                continue  # idempotent re-drive of the same certificate
            broker.valid_coins[coin.coin_y] = coin
            owner = coin.owner_address
            if owner is not None:
                broker.owner_coins.setdefault(owner, set()).add(coin.coin_y)
            broker.total_opened += coin.value
    elif op == "credit":
        from repro.core.broker import Account

        payout = broker.accounts.get(mut["payout_to"])
        if payout is None:
            broker.accounts[mut["payout_to"]] = Account(
                identity=PublicKey(params=broker.params, y=mut["payout_identity_y"]),
                balance=mut["credited"],
            )
        else:
            payout.balance += mut["credited"]
        broker.total_opened += mut["credited"]
    elif op == "debit":
        broker.accounts[mut["account"]].balance -= mut["amount"]
        broker.total_opened -= mut["amount"]
    elif op == "unmint":
        for coin_bytes in mut["coins"]:
            coin = Coin(cert=decode_signed(coin_bytes, broker.params))
            existing = broker.valid_coins.get(coin.coin_y)
            if existing is None or existing.encode() != coin_bytes:
                continue  # never minted here (prepare was rejected/unsent)
            del broker.valid_coins[coin.coin_y]
            owner = coin.owner_address
            if owner is not None:
                broker.owner_coins.get(owner, set()).discard(coin.coin_y)
            broker.total_opened -= coin.value
    else:
        raise UnknownMutation(f"no applier for cross-shard op {op!r}")


_APPLIERS: dict[str, Callable[["Broker", dict[str, Any]], None]] = {
    "broker_init": _apply_broker_init,
    "open_account": _apply_open_account,
    "mint": _apply_mint,
    "deposit": _apply_deposit,
    "downtime_binding": _apply_downtime_binding,
    "top_up": _apply_top_up,
    "sync_consumed": _apply_sync_consumed,
    "handoff_begin": _apply_handoff_begin,
    "handoff_commit": _apply_handoff_commit,
    "handoff_abort": _apply_handoff_abort,
    "xshard_apply": _apply_xshard,
}


def apply_broker(broker: "Broker", mut: dict[str, Any]) -> None:
    """Apply one mutation record to ``broker`` (live path and replay)."""
    try:
        applier = _APPLIERS[mut["type"]]
    except KeyError:
        raise UnknownMutation(f"no applier for mutation type {mut.get('type')!r}") from None
    applier(broker, mut)


def verifiable_signatures(broker: "Broker", mut: dict[str, Any]) -> list[tuple[Any, bytes, Any]]:
    """DSA (signer, payload, signature) triples a replayed record carries.

    Recovery batch-verifies these after replay — a journal that was
    tampered with between crash and restart must not smuggle unsigned
    coins or bindings into the rebuilt broker.
    """
    triples: list[tuple[Any, bytes, Any]] = []
    kind = mut["type"]
    if kind == "mint":
        for coin_bytes in mut["coins"]:
            signed = decode_signed(coin_bytes, broker.params)
            triples.append((signed.signer, signed.payload_bytes, signed.signature))
    elif kind == "top_up":
        signed = decode_signed(mut["coin"], broker.params)
        triples.append((signed.signer, signed.payload_bytes, signed.signature))
    elif kind == "downtime_binding":
        signed = decode_signed(mut["binding"], broker.params)
        triples.append((signed.signer, signed.payload_bytes, signed.signature))
    elif kind == "deposit":
        from repro.core.protocol import decode_dual

        envelope = decode_dual(mut["envelope"], broker.params)
        triples.append(
            (envelope.coin_signer, envelope.inner.payload_bytes, envelope.inner.signature)
        )
    elif kind == "handoff_begin":
        # The begin record carries every signed artifact the later commit
        # applies (the commit record itself is just an ``h`` pointer).
        for coin_bytes in mut.get("local_coins", ()):
            signed = decode_signed(coin_bytes, broker.params)
            triples.append((signed.signer, signed.payload_bytes, signed.signature))
        if isinstance(mut.get("coin"), bytes):
            signed = decode_signed(mut["coin"], broker.params)
            triples.append((signed.signer, signed.payload_bytes, signed.signature))
        if isinstance(mut.get("envelope"), bytes):
            from repro.core.protocol import decode_dual

            envelope = decode_dual(mut["envelope"], broker.params)
            triples.append(
                (envelope.coin_signer, envelope.inner.payload_bytes, envelope.inner.signature)
            )
    elif kind == "xshard_apply" and mut.get("op") == "mint":
        for coin_bytes in mut["coins"]:
            signed = decode_signed(coin_bytes, broker.params)
            triples.append((signed.signer, signed.payload_bytes, signed.signature))
    return triples
