"""Group commit: amortize one fsync over a batch of journal records.

The PR-4 write-ahead discipline says a reply may leave the broker only
after the journal record describing its mutations is fsynced.  Honoring
that per request costs one fsync per operation — on commodity storage the
fsync alone caps throughput well below what batched signature verification
can sustain.  :class:`GroupCommitter` restores the balance: handlers
*stage* their records (and the callbacks that release their replies), and
a later *flush* writes the whole batch as one group frame
(:meth:`repro.store.journal.DurableStore.append_many`) with a single
fsync, then — and only then — runs the callbacks.

Crash semantics are exactly the per-record ones, batched: a crash before
the covering fsync loses the *entire* batch atomically (the group frame is
one checksummed unit, so no torn prefix of it survives recovery), and no
reply for any record in it has been released — every affected client
retries against the recovered state, which is precisely the per-record
lost-reply story.  A crash after the fsync is the usual
durable-but-reply-lost ambiguity the idempotent-retry path already covers.

Flushing policy is governed by two knobs:

* ``max_batch`` — staging the Nth record triggers an automatic flush;
* ``max_delay`` — with an injected ``timer`` (any monotonic seconds
  callable; the default of ``None`` keeps the committer fully
  deterministic), :meth:`due` reports when the oldest staged record has
  waited longer than this, and the driving loop flushes.

The committer never spins a thread of its own: the owning loop (the
throughput engine, a test harness) decides when to call :meth:`flush`,
which keeps crash injection and replay deterministic.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.store.journal import DurableStore


class GroupCommitter:
    """Stage journal records; fsync them in batches; then release replies.

    ``on_durable`` callbacks are the reply-release hook: they run strictly
    after the covering fsync, in staging order, and never run at all if the
    append died first — so a caller that only replies from its callback can
    never leak a reply for an unfsynced mutation.
    """

    def __init__(
        self,
        store: DurableStore,
        max_batch: int = 32,
        max_delay: float | None = None,
        timer: Callable[[], float] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay is not None and timer is None:
            raise ValueError("max_delay needs an injected timer")
        self.store = store
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.timer = timer
        self.flushes = 0  # fsync count: one per non-empty flush
        self._records: list[dict[str, Any]] = []
        self._callbacks: list[Callable[[int], None] | None] = []
        self._oldest: float | None = None

    @property
    def pending(self) -> int:
        """Records staged but not yet durable."""
        return len(self._records)

    def stage(
        self, record: dict[str, Any], on_durable: Callable[[int], None] | None = None
    ) -> None:
        """Queue ``record``; run ``on_durable(lsn)`` after its covering fsync.

        Reaching ``max_batch`` staged records flushes immediately, so a
        caller that only ever stages still gets bounded reply latency.
        """
        self._records.append(record)
        self._callbacks.append(on_durable)
        if self._oldest is None and self.timer is not None:
            self._oldest = self.timer()
        if len(self._records) >= self.max_batch:
            self.flush()

    def due(self) -> bool:
        """True when the oldest staged record has outwaited ``max_delay``."""
        if not self._records:
            return False
        if self.max_delay is None or self._oldest is None:
            return False
        assert self.timer is not None  # enforced in __init__
        return self.timer() - self._oldest >= self.max_delay

    def flush(self) -> list[int]:
        """Make every staged record durable with one fsync; returns LSNs.

        The staged batch is consumed *before* the append so a crash raised
        at the fsync boundary (:class:`~repro.store.crashpoints.SimulatedCrash`)
        cannot double-append on a later flush: the batch is simply lost,
        which is the correct crash outcome.  Callbacks run only on success.
        """
        if not self._records:
            return []
        records, self._records = self._records, []
        callbacks, self._callbacks = self._callbacks, []
        self._oldest = None
        lsns = self.store.append_many(records)
        self.flushes += 1
        for lsn, callback in zip(lsns, callbacks):
            if callback is not None:
                callback(lsn)
        return lsns
