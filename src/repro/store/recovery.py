"""Rebuild a broker or peer from snapshot + journal replay.

The recovery contract, in order:

1. repair the journal's torn tail (a mid-append death leaves a partial
   frame; it must be truncated before the store is written to again);
2. restore the snapshot, if any (signature-verified by
   :mod:`repro.core.persistence`);
3. replay every journal record past the snapshot's covered LSN through
   the same :mod:`repro.store.apply` functions the live path uses;
4. refill the RPC replay cache from the records' (kind, idem, reply)
   columns — this is what lets a client retry ride over the restart with
   exactly-once effects (the PR-2 dedupe guarantee, now crash-durable);
5. batch-re-verify every signature the replayed records carried;
6. run the invariant auditor and refuse to hand back a broker that
   fails it.

Only then is the store re-bound to the recovered entity for new appends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.core.clock import DEFAULT_RENEWAL_PERIOD
from repro.crypto.dsa import dsa_batch_verify
from repro.messages.codec import decode
from repro.store.apply import apply_broker, verifiable_signatures
from repro.store.audit import AuditReport, audit_broker
from repro.store.journal import DurableStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import Peer


class RecoveryError(Exception):
    """The store's contents cannot be turned into a trustworthy entity."""


@dataclass
class RecoveryResult:
    """What one recovery pass did (chaos tests diff these across runs)."""

    entity: Any
    records_replayed: int
    snapshot_loaded: bool
    torn_tail_bytes: int
    audit: AuditReport | None

    def summary(self) -> dict[str, Any]:
        return {
            "records_replayed": self.records_replayed,
            "snapshot_loaded": self.snapshot_loaded,
            "torn_tail_bytes": self.torn_tail_bytes,
            "audit": None if self.audit is None else self.audit.summary(),
        }


def _init_mutation(records: list[dict[str, Any]], kind: str) -> dict[str, Any] | None:
    for record in records:
        for mut in record["muts"]:
            if mut["type"] == kind:
                return mut
    return None


def _decrypted(blob: bytes | None, encryption_key: bytes | None) -> bytes | None:
    """Strip at-rest encryption so the blob can be peeked and restored."""
    if blob is None or not blob.startswith(b"enc:"):
        return blob
    if encryption_key is None:
        raise RecoveryError("snapshot is encrypted; an encryption key is required")
    from repro.anonymity.cipher import open_box

    return open_box(encryption_key, blob[4:])


def _peek_address(blob: bytes | None, init: dict[str, Any] | None) -> str:
    if blob is not None:
        state = decode(blob)
        if isinstance(state, dict) and "address" in state:
            return state["address"]
    if init is not None:
        return init["address"]
    raise RecoveryError("store has no snapshot or init record to recover from")


class RecoveryManager:
    """Rebuilds entities from one :class:`DurableStore`."""

    def __init__(self, store: DurableStore) -> None:
        self.store = store

    # -- broker --------------------------------------------------------------

    def recover_broker(
        self,
        transport,
        *,
        judge,
        params,
        clock,
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        address: str | None = None,
        encryption_key: bytes | None = None,
        run_audit: bool = True,
    ) -> RecoveryResult:
        """Build a fresh :class:`~repro.core.broker.Broker` from the store.

        The caller must have unregistered any previous broker at the same
        address (the constructor registers on ``transport``).  Raises
        :class:`RecoveryError` if the store is empty, a replayed signature
        fails, or the post-replay audit finds a violated invariant.
        """
        from repro.core.broker import Broker
        from repro.core.persistence import restore_broker_state

        torn_bytes = self.store.truncate_torn_tail()
        snapshot_blob, records, _torn = self.store.load()
        blob = _decrypted(snapshot_blob, encryption_key)
        stored_address = _peek_address(blob, _init_mutation(records, "broker_init"))
        if address is not None and address != stored_address:
            raise RecoveryError(
                f"store belongs to {stored_address!r}, not {address!r}"
            )
        address = stored_address
        broker = Broker(
            transport,
            judge=judge,
            params=params,
            clock=clock,
            address=address,
            renewal_period=renewal_period,
        )
        if blob is not None:
            restore_broker_state(broker, blob)
        batch: list[tuple[Any, bytes, Any]] = []
        for record in records:
            for mut in record["muts"]:
                apply_broker(broker, mut)
                batch.extend(verifiable_signatures(broker, mut))
            if record.get("idem") is not None:
                broker.replay_cache.store((record["kind"], record["idem"]), record["reply"])
        if batch and not dsa_batch_verify(batch):
            raise RecoveryError("a replayed journal record fails signature verification")
        report = None
        if run_audit:
            report = audit_broker(broker)
            if not report.ok:
                raise RecoveryError(
                    "post-recovery audit failed: " + "; ".join(report.failures)
                )
        broker.bind_store(self.store)
        return RecoveryResult(
            entity=broker,
            records_replayed=len(records),
            snapshot_loaded=snapshot_blob is not None,
            torn_tail_bytes=torn_bytes,
            audit=report,
        )

    # -- peer ----------------------------------------------------------------

    def recover_peer(
        self,
        transport,
        *,
        params,
        clock,
        judge,
        broker_address: str,
        broker_key,
        sync_mode: str = "proactive",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy=None,
        encryption_key: bytes | None = None,
        shard_map=None,
        breaker_config=None,
    ) -> RecoveryResult:
        """Build a fresh :class:`~repro.core.peer.Peer` from the store.

        Wallet entries are verified against the broker key as they are
        replayed (see :mod:`repro.store.records`); last-write-wins per
        coin, exactly like the live mutation order.
        """
        from repro.core.peer import Peer
        from repro.core.persistence import restore_peer_state
        from repro.crypto.group_signature import GroupMemberKey
        from repro.store import records as wallet_records

        torn_bytes = self.store.truncate_torn_tail()
        snapshot_blob, records, _torn = self.store.load()
        blob = _decrypted(snapshot_blob, encryption_key)
        init = _init_mutation(records, "peer_init")
        address = _peek_address(blob, init)
        if init is not None:
            member_key = GroupMemberKey(
                params=params, x=init["member_x"], h=init["member_h"]
            )
        else:
            state = decode(blob)
            member_key = GroupMemberKey(
                params=params, x=state["member_x"], h=state["member_h"]
            )
        peer = Peer(
            transport,
            address=address,
            params=params,
            clock=clock,
            judge=judge,
            member_key=member_key,
            broker_address=broker_address,
            broker_key=broker_key,
            sync_mode=sync_mode,
            renewal_period=renewal_period,
            retry_policy=retry_policy,
            shard_map=shard_map,
            breaker_config=breaker_config,
        )
        if blob is not None:
            restore_peer_state(peer, blob)
        replayed = 0
        for record in records:
            for mut in record["muts"]:
                self._apply_peer(peer, mut, wallet_records)
            replayed += 1
        peer.bind_store(self.store)
        return RecoveryResult(
            entity=peer,
            records_replayed=replayed,
            snapshot_loaded=snapshot_blob is not None,
            torn_tail_bytes=torn_bytes,
            audit=None,
        )

    @staticmethod
    def _apply_peer(peer: "Peer", mut: dict[str, Any], wallet_records) -> None:
        from repro.crypto.group_signature import GroupMemberKey
        from repro.crypto.keys import KeyPair

        kind = mut["type"]
        if kind == "peer_init":
            peer.identity = KeyPair.from_secret(peer.params, mut["identity_x"])
            peer.member_key = GroupMemberKey(
                params=peer.params, x=mut["member_x"], h=mut["member_h"]
            )
        elif kind == "wallet_put":
            held = wallet_records.restore_held(peer, mut["entry"])
            peer.wallet[held.coin.coin_y] = held
        elif kind == "wallet_del":
            peer.wallet.pop(mut["coin_y"], None)
        elif kind == "owned_put":
            state = wallet_records.restore_owned(peer, mut["entry"])
            peer.owned[state.coin.coin_y] = state
        elif kind == "owned_clean_all":
            for state in peer.owned.values():
                state.dirty = False
        elif kind == "owned_dirty_all":
            for state in peer.owned.values():
                state.dirty = True
        else:
            raise RecoveryError(f"unknown peer mutation type {kind!r}")
