"""Append-only write-ahead journal with atomic snapshots.

On-disk layout of a store directory::

    journal.wal     frame*            (append-only; fsync per frame)
    snapshot.bin    MAGIC frame       (atomic: write temp, fsync, rename)

where ``frame`` is::

    4-byte big-endian payload length | canonical-codec payload | SHA-256(payload)

Every journal payload is a dict carrying an ``lsn`` (log sequence number,
monotonically increasing from 1).  A frame holds either one record
(:meth:`DurableStore.append`) or a *group* of consecutively-stamped records
(:meth:`DurableStore.append_many` — group commit: one fsync covers the
batch, and because the batch shares one checksummed frame, a torn write
loses it atomically).  A snapshot records ``covers_lsn``: the
highest LSN whose effects it already contains.  Loading applies the
snapshot and replays only records with ``lsn > covers_lsn``, which makes
snapshot + compaction crash-safe at *every* interleaving — a crash between
the snapshot rename and the journal rewrite merely leaves covered records
in the journal, and they are skipped on replay.

Failure discrimination is strict and typed:

* an **incomplete tail frame** (torn write: the process died mid-append)
  is tolerated — loading stops at the last complete record and reports
  ``torn_tail=True`` so recovery can truncate it;
* a **complete frame whose checksum mismatches** (bit rot, tampering) is
  :class:`JournalCorrupt` — partial state is never loaded silently.

Crash injection: when a :class:`~repro.store.crashpoints.CrashPointPlan`
is attached, every fsync boundary calls ``plan.crossing(site)``; a
pre-fsync crash on an append additionally leaves a seeded torn prefix of
the in-flight frame on disk, exactly like a real mid-write death.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from pathlib import Path
from typing import Any

from repro.messages.codec import CodecError, decode, encode
from repro.store.crashpoints import CrashPointPlan, SimulatedCrash

_LEN = struct.Struct(">I")
_CHECKSUM_BYTES = 32
SNAPSHOT_MAGIC = b"WPSNAP1\n"

#: Upper bound on a single record (sanity check against garbage lengths).
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


class JournalCorrupt(Exception):
    """A complete frame (or the snapshot) fails its integrity check."""


def _frame(payload: bytes) -> bytes:
    return _LEN.pack(len(payload)) + payload + hashlib.sha256(payload).digest()


def _is_group_frame(record: Any) -> bool:
    """True iff ``record`` is an :meth:`DurableStore.append_many` group frame.

    Group frames have *exactly* the keys ``{"lsn", "group"}``, so a caller
    record that merely happens to contain a ``"group"`` field (it would also
    carry its own payload keys) can never be mistaken for one.
    """
    return isinstance(record, dict) and set(record) == {"lsn", "group"}


class DurableStore:
    """One entity's journal + snapshot directory.

    ``crash_points`` may be attached (or swapped) at any time; harnesses
    typically build the store first, run setup traffic, and only then arm
    a plan so crash-point indices enumerate steady-state boundaries.
    """

    JOURNAL_NAME = "journal.wal"
    SNAPSHOT_NAME = "snapshot.bin"

    def __init__(self, root: str | Path, crash_points: CrashPointPlan | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / self.JOURNAL_NAME
        self.snapshot_path = self.root / self.SNAPSHOT_NAME
        self.crash_points = crash_points
        covers = self._covers_lsn(self._read_snapshot())
        _state, records, _torn = self.load()
        self.next_lsn = max([covers] + [record["lsn"] for record in records]) + 1

    # -- state queries -------------------------------------------------------

    @property
    def fresh(self) -> bool:
        """True iff nothing has ever been journaled or snapshotted here."""
        return self.next_lsn == 1 and not self.snapshot_path.exists()

    # -- crash injection -----------------------------------------------------

    def _crossing(self, site: str, pending_frame: bytes | None = None) -> None:
        plan = self.crash_points
        if plan is None:
            return
        try:
            plan.crossing(site)
        except SimulatedCrash:
            if pending_frame is not None:
                # Died mid-append: a prefix of the frame is on disk.
                torn = plan.torn_length(len(pending_frame))
                if torn:
                    with open(self.journal_path, "ab") as fh:
                        fh.write(pending_frame[:torn])
                        fh.flush()
                        os.fsync(fh.fileno())
            raise

    # -- writing -------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Durably append one record; returns its LSN.

        The record is stamped with the next LSN, framed, written, and
        fsynced before this method returns — callers may only send a reply
        after ``append`` succeeds (write-ahead discipline).
        """
        lsn = self.next_lsn
        stamped = dict(record)
        stamped["lsn"] = lsn
        frame = _frame(encode(stamped))
        self._crossing("journal.append.pre_sync", pending_frame=frame)
        with open(self.journal_path, "ab") as fh:
            fh.write(frame)
            fh.flush()
            os.fsync(fh.fileno())
        self.next_lsn = lsn + 1
        self._crossing("journal.append.post_sync")
        return lsn

    def append_many(self, records: list[dict[str, Any]]) -> list[int]:
        """Durably append several records with ONE fsync; returns their LSNs.

        Group commit: the records are stamped with consecutive LSNs and
        encoded into a *single* journal frame (``{"lsn": <last>, "group":
        (<stamped>, ...)}``), so the frame checksum covers the whole batch
        and a torn write loses the batch atomically — there is no
        interleaving where a prefix of the batch survives a crash.  Loading
        expands the group back into its member records transparently.

        Write-ahead discipline is unchanged, just amortized: callers may
        release the replies for *all* covered requests once this returns.
        A batch of one degenerates to :meth:`append` (same frame layout,
        same crash sites), so crash-point enumeration is stable for
        harnesses that flush per record.
        """
        if not records:
            return []
        if len(records) == 1:
            return [self.append(records[0])]
        first = self.next_lsn
        stamped = []
        for offset, record in enumerate(records):
            entry = dict(record)
            entry["lsn"] = first + offset
            stamped.append(entry)
        last = first + len(records) - 1
        frame = _frame(encode({"lsn": last, "group": tuple(stamped)}))
        self._crossing("journal.group.pre_sync", pending_frame=frame)
        with open(self.journal_path, "ab") as fh:
            fh.write(frame)
            fh.flush()
            os.fsync(fh.fileno())
        self.next_lsn = last + 1
        self._crossing("journal.group.post_sync")
        return list(range(first, last + 1))

    def snapshot(self, state: bytes) -> int:
        """Atomically install ``state`` as the snapshot and compact the log.

        Returns the LSN the snapshot covers.  The temp-write / fsync /
        rename sequence means a crash at any boundary leaves either the
        old snapshot or the new one — never a torn mixture — and the LSN
        skip rule makes the subsequent journal rewrite equally crash-safe.
        """
        covers = self.next_lsn - 1
        payload = encode({"covers_lsn": covers, "state": state})
        blob = SNAPSHOT_MAGIC + _frame(payload)
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        self._crossing("snapshot.pre_sync")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        self._crossing("snapshot.post_sync")
        os.replace(tmp, self.snapshot_path)
        self._crossing("snapshot.post_rename")
        self._compact(covers)
        return covers

    def _compact(self, covers: int) -> None:
        """Drop journal records the snapshot already covers.

        A group-commit frame whose members straddle ``covers`` is re-framed
        with only the uncovered members (its stored ``lsn`` is the last
        member's, so the covered/uncovered decision is per member).
        """
        frames: list[bytes] = []
        for payload in self._raw_frames():
            record = decode(payload)
            if _is_group_frame(record):
                members = record["group"]
                keep = tuple(member for member in members if member["lsn"] > covers)
                if not keep:
                    continue
                if len(keep) == len(members):
                    frames.append(_frame(payload))
                else:
                    frames.append(_frame(encode({"lsn": keep[-1]["lsn"], "group": keep})))
            elif record["lsn"] > covers:
                frames.append(_frame(payload))
        self._crossing("journal.compact.pre_sync")
        tmp = self.journal_path.with_name(self.journal_path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(b"".join(frames))
            fh.flush()
            os.fsync(fh.fileno())
        self._crossing("journal.compact.post_sync")
        os.replace(tmp, self.journal_path)

    def truncate_torn_tail(self) -> int:
        """Cut an incomplete tail frame off the journal; returns bytes cut.

        Recovery must call this before the store is appended to again —
        new frames written after torn bytes would be unreachable (the
        reader stops at the tear).
        """
        good = 0
        for payload in self._raw_frames():
            good += _LEN.size + len(payload) + _CHECKSUM_BYTES
        size = self.journal_path.stat().st_size if self.journal_path.exists() else 0
        excess = size - good
        if excess > 0:
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())
        return max(excess, 0)

    # -- reading -------------------------------------------------------------

    def load(self) -> tuple[bytes | None, list[dict[str, Any]], bool]:
        """Read everything back: ``(snapshot_state, records, torn_tail)``.

        ``snapshot_state`` is the exact bytes passed to :meth:`snapshot`
        (``None`` if no snapshot exists); ``records`` are the journal
        records *after* the snapshot's covered LSN, in order;
        ``torn_tail`` reports an incomplete final frame (tolerated).
        Raises :class:`JournalCorrupt` on any integrity failure.
        """
        snapshot = self._read_snapshot()
        covers = self._covers_lsn(snapshot)
        records: list[dict[str, Any]] = []
        last_lsn = None
        torn = False
        for payload in self._raw_frames():
            try:
                record = decode(payload)
            except CodecError as exc:  # pragma: no cover - checksum guards this
                raise JournalCorrupt(f"record decodes to garbage: {exc}") from exc
            if not isinstance(record, dict) or "lsn" not in record:
                raise JournalCorrupt("journal record is missing its LSN")
            # A group-commit frame carries several records; expand it so
            # callers replay exactly what they would have with per-record
            # appends (the frame is the atomicity unit, not the interface).
            if _is_group_frame(record):
                members = record["group"]
                if not isinstance(members, tuple) or not members:
                    raise JournalCorrupt("group-commit frame has a malformed member list")
            else:
                members = (record,)
            for member in members:
                if not isinstance(member, dict) or "lsn" not in member:
                    raise JournalCorrupt("group-commit member is missing its LSN")
                lsn = member["lsn"]
                if last_lsn is not None and lsn <= last_lsn:
                    raise JournalCorrupt(f"non-monotonic LSN {lsn} after {last_lsn}")
                last_lsn = lsn
                if lsn > covers:
                    records.append(member)
        torn = self._has_torn_tail()
        state = None if snapshot is None else snapshot["state"]
        return state, records, torn

    def _raw_frames(self) -> list[bytes]:
        """Complete, checksum-verified frame payloads (stops at a tear)."""
        payloads, _torn = self._scan_frames()
        return payloads

    def _has_torn_tail(self) -> bool:
        _payloads, torn = self._scan_frames()
        return torn

    def _scan_frames(self) -> tuple[list[bytes], bool]:
        if not self.journal_path.exists():
            return [], False
        data = self.journal_path.read_bytes()
        payloads: list[bytes] = []
        offset = 0
        while offset < len(data):
            if offset + _LEN.size > len(data):
                return payloads, True  # torn inside the length prefix
            (length,) = _LEN.unpack_from(data, offset)
            if length == 0 or length > MAX_FRAME_PAYLOAD:
                # A complete-but-absurd length prefix can only come from a
                # tear (the prefix bytes are a fragment of a lost frame).
                return payloads, True
            end = offset + _LEN.size + length + _CHECKSUM_BYTES
            if end > len(data):
                return payloads, True  # torn inside payload or checksum
            payload = data[offset + _LEN.size : offset + _LEN.size + length]
            checksum = data[offset + _LEN.size + length : end]
            if not hmac.compare_digest(hashlib.sha256(payload).digest(), checksum):
                raise JournalCorrupt(
                    f"record checksum mismatch at byte {offset} of {self.journal_path}"
                )
            payloads.append(payload)
            offset = end
        return payloads, False

    def _read_snapshot(self) -> dict[str, Any] | None:
        if not self.snapshot_path.exists():
            return None
        data = self.snapshot_path.read_bytes()
        if not data.startswith(SNAPSHOT_MAGIC):
            raise JournalCorrupt(f"{self.snapshot_path} is not a snapshot")
        body = data[len(SNAPSHOT_MAGIC) :]
        if len(body) < _LEN.size:
            raise JournalCorrupt(f"{self.snapshot_path} is truncated")
        (length,) = _LEN.unpack_from(body, 0)
        end = _LEN.size + length + _CHECKSUM_BYTES
        if length > MAX_FRAME_PAYLOAD or len(body) != end:
            raise JournalCorrupt(f"{self.snapshot_path} has a malformed frame")
        payload = body[_LEN.size : _LEN.size + length]
        checksum = body[_LEN.size + length : end]
        if not hmac.compare_digest(hashlib.sha256(payload).digest(), checksum):
            raise JournalCorrupt(f"{self.snapshot_path} checksum mismatch")
        snapshot = decode(payload)
        if (
            not isinstance(snapshot, dict)
            or "covers_lsn" not in snapshot
            or not isinstance(snapshot.get("state"), bytes)
        ):
            raise JournalCorrupt(f"{self.snapshot_path} has an unrecognized shape")
        return snapshot

    @staticmethod
    def _covers_lsn(snapshot: dict[str, Any] | bytes | None) -> int:
        if isinstance(snapshot, dict):
            return snapshot["covers_lsn"]
        return 0
