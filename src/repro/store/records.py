"""Canonical wallet-entry (de)serializers.

One entry shape per wallet side, shared by three consumers so they can
never drift: :mod:`repro.core.persistence` snapshots, the peer's journal
records (``wallet_put`` / ``owned_put``), and recovery replay.  The
restore functions re-verify every certificate and binding against the
broker key — a corrupted or tampered store must not inject bogus coins.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.coin import Coin, CoinBinding, HeldCoin, OwnedCoinState
from repro.core.errors import VerificationFailed
from repro.core.protocol import decode_signed
from repro.crypto.keys import KeyPair

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import Peer
    from repro.crypto.group_signature import GroupMemberKey


def peer_init_record(
    address: str, identity: KeyPair, member_key: "GroupMemberKey"
) -> dict[str, Any]:
    """First journal record of a fresh peer store.

    At-rest custody of the identity and group-member secrets lives here,
    not in the peer: coins are bearer key material, so losing these loses
    money, and only the serializer layer may put raw exponents on disk
    (lint rule WP111).
    """
    return {
        "type": "peer_init",
        "address": address,
        "identity_x": identity.x,
        "member_x": member_key.x,
        "member_h": member_key.h,
    }


def broker_init_record(address: str, keypair: KeyPair) -> dict[str, Any]:
    """First journal record of a fresh broker store (signing-key custody)."""
    return {
        "type": "broker_init",
        "address": address,
        "signing_x": keypair.x,
    }


def held_entry(held: HeldCoin) -> dict[str, Any]:
    """Serialize one held coin (certificate, holder secret, binding)."""
    return {
        "coin": held.coin.encode(),
        "holder_x": held.holder_keypair.x,
        "binding": held.binding.signed.encode(),
        "via_broker": held.binding.via_broker,
    }


def owned_entry(state: OwnedCoinState) -> dict[str, Any]:
    """Serialize one owned coin (certificate, coin secret, audit trail)."""
    return {
        "coin": state.coin.encode(),
        "coin_x": state.coin_keypair.x,
        "binding": state.binding.signed.encode() if state.binding else None,
        "binding_via_broker": state.binding.via_broker if state.binding else False,
        "relinquishments": list(state.relinquishments),
        "dirty": state.dirty,
        "seq_floor": state.seq_floor,
    }


def restore_held(peer: "Peer", entry: dict[str, Any]) -> HeldCoin:
    """Rebuild (and verify) a held coin from its entry."""
    coin = Coin(cert=decode_signed(entry["coin"], peer.params))
    if not coin.verify(peer.broker_key):
        raise VerificationFailed("stored coin certificate invalid")
    binding = CoinBinding(
        signed=decode_signed(entry["binding"], peer.params),
        via_broker=bool(entry["via_broker"]),
    )
    if not binding.verify(coin.coin_public_key(peer.params), peer.broker_key):
        raise VerificationFailed("stored holding binding invalid")
    holder_keypair = KeyPair.from_secret(peer.params, entry["holder_x"])
    if binding.holder_y != holder_keypair.public.y:
        raise VerificationFailed("stored holder key does not match its binding")
    return HeldCoin(coin=coin, holder_keypair=holder_keypair, binding=binding)


def restore_owned(peer: "Peer", entry: dict[str, Any]) -> OwnedCoinState:
    """Rebuild (and verify) an owned coin's state from its entry."""
    coin = Coin(cert=decode_signed(entry["coin"], peer.params))
    if not coin.verify(peer.broker_key):
        raise VerificationFailed("stored owned-coin certificate invalid")
    coin_keypair = KeyPair.from_secret(peer.params, entry["coin_x"])
    if coin_keypair.public.y != coin.coin_y:
        raise VerificationFailed("stored coin secret does not match the coin")
    binding = None
    if entry["binding"] is not None:
        binding = CoinBinding(
            signed=decode_signed(entry["binding"], peer.params),
            via_broker=bool(entry["binding_via_broker"]),
        )
        if not binding.verify(coin_keypair.public, peer.broker_key):
            raise VerificationFailed("stored owner binding invalid")
    return OwnedCoinState(
        coin=coin,
        coin_keypair=coin_keypair,
        binding=binding,
        relinquishments=list(entry["relinquishments"]),
        dirty=bool(entry["dirty"]),
        seq_floor=int(entry["seq_floor"]),
    )
