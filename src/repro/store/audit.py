"""Post-recovery invariant auditor.

Recovery is only trustworthy if the rebuilt state provably satisfies the
monetary invariants the paper's security argument rests on.  The auditor
checks four families and reports every violation (it never stops at the
first — a corrupted store should be diagnosed in one pass):

1. **Value conservation** — account balances plus circulating coin value
   equal the total value ever opened; no balance is negative.
2. **Deposited ⇒ retired** — every deposited coin is a known coin, is
   excluded from circulation by construction, and has no live downtime
   binding (a deposit pops the binding).
3. **Index consistency** — the owner index and the coin registry agree in
   both directions, and every pending-sync entry names a real owned coin.
4. **Signatures** — every coin certificate and downtime binding verifies
   under the broker's (restored) signing key, batch-checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.crypto.dsa import dsa_batch_verify, dsa_verify

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import Broker


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    accounts_checked: int = 0
    coins_checked: int = 0
    bindings_checked: int = 0

    def summary(self) -> dict[str, Any]:
        """Plain-dict view (chaos tests diff these across replayed runs)."""
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "accounts_checked": self.accounts_checked,
            "coins_checked": self.coins_checked,
            "bindings_checked": self.bindings_checked,
        }


def audit_broker(broker: "Broker", expected_total: int | None = None) -> AuditReport:
    """Run every invariant family against ``broker``; never raises.

    ``expected_total`` overrides the broker's own ``total_opened`` counter
    when the caller tracks injected value independently (tests do).
    """
    failures: list[str] = []
    total = broker.total_opened if expected_total is None else expected_total

    # 1. Value conservation.
    balances = sum(account.balance for account in broker.accounts.values())
    circulating = broker.circulating_value()
    if balances + circulating != total:
        failures.append(
            f"value not conserved: accounts {balances} + circulating "
            f"{circulating} != opened {total}"
        )
    for name, account in broker.accounts.items():
        if account.balance < 0:
            failures.append(f"account {name!r} has negative balance {account.balance}")

    # 2. Deposited ⇒ retired.
    for coin_y in broker.deposited:
        if coin_y not in broker.valid_coins:
            failures.append(f"deposited coin {coin_y:#x} was never minted")
        if coin_y in broker.downtime_bindings:
            failures.append(f"deposited coin {coin_y:#x} still has a live binding")

    # 3. Index consistency (owner index ↔ coin registry, both directions).
    for owner, coins in broker.owner_coins.items():
        for coin_y in coins:
            coin = broker.valid_coins.get(coin_y)
            if coin is None:
                failures.append(f"owner index names unknown coin {coin_y:#x}")
            elif coin.owner_address != owner:
                failures.append(
                    f"owner index says {owner!r} owns {coin_y:#x}, "
                    f"certificate says {coin.owner_address!r}"
                )
    for coin_y, coin in broker.valid_coins.items():
        owner = coin.owner_address
        if owner is not None and coin_y not in broker.owner_coins.get(owner, set()):
            failures.append(f"coin {coin_y:#x} missing from {owner!r}'s owner index")
    for owner, coins in broker.pending_sync.items():
        for coin_y in coins:
            if coin_y not in broker.valid_coins:
                failures.append(f"pending sync names unknown coin {coin_y:#x}")

    # 4. Signatures: every certificate and binding under the restored key.
    batch = []
    for coin_y, coin in broker.valid_coins.items():
        if coin.cert.signer.y != broker.public_key.y:
            failures.append(f"coin {coin_y:#x} certificate signed by a foreign key")
            continue
        batch.append((coin.cert.signer, coin.cert.payload_bytes, coin.cert.signature))
    bindings_checked = 0
    for coin_y, binding in broker.downtime_bindings.items():
        bindings_checked += 1
        if binding.signed.signer.y != broker.public_key.y:
            failures.append(f"binding for {coin_y:#x} signed by a foreign key")
            continue
        batch.append(
            (binding.signed.signer, binding.signed.payload_bytes, binding.signed.signature)
        )
    if batch and not dsa_batch_verify(batch):
        # Fall back to singles so the report names the offender(s).
        for signer, payload, signature in batch:
            if not dsa_verify(signer, payload, signature):
                failures.append("a stored certificate or binding fails verification")

    return AuditReport(
        ok=not failures,
        failures=failures,
        accounts_checked=len(broker.accounts),
        coins_checked=len(broker.valid_coins),
        bindings_checked=bindings_checked,
    )
