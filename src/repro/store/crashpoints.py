"""Deterministic crash injection at durability boundaries.

A real broker process can die at any instant; what matters for recovery is
the set of *distinguishable* deaths, and those are exactly the fsync
boundaries of the journal and snapshot code: before a record is durable,
after it is durable but before the reply went out, between a snapshot's
write and its rename, and so on.  :class:`CrashPointPlan` enumerates every
such boundary crossed during a run and can be armed to raise
:class:`SimulatedCrash` at exactly one of them.

The plan composes with the PR-2 fault machinery: the transport converts a
:class:`SimulatedCrash` escaping a handler into the node going offline plus
:class:`~repro.net.transport.ReplyLost` — the same ambiguity a
``crash_after_handler`` fault produces — so the idempotent-retry path is
what carries in-flight payments over a broker death and restart.

Determinism: crossings are counted in execution order, so for a fixed
workload seed the boundary numbered ``i`` is the same boundary in every
run; the torn-tail length simulated for a pre-fsync crash comes from the
plan's own seeded RNG.
"""

from __future__ import annotations

import random


class SimulatedCrash(Exception):
    """The process died at a durability boundary (injected, not an error).

    Carries the crossing ``site`` label (e.g. ``journal.append.pre_sync``)
    and its ``index`` in the plan's enumeration so harnesses can report
    exactly which death they simulated.
    """

    def __init__(self, site: str, index: int) -> None:
        super().__init__(f"simulated crash at {site} (crash point #{index})")
        self.site = site
        self.index = index


class CrashPointPlan:
    """Enumerate durability boundaries; optionally die at one of them.

    With ``fire_at=None`` the plan only counts: run the workload once,
    read :attr:`crossings`, and you know how many distinct crash points it
    has.  With ``fire_at=i`` the ``i``-th crossing raises
    :class:`SimulatedCrash` — exactly once, so the restarted process runs
    to completion instead of dying again at the same boundary.
    """

    def __init__(self, fire_at: int | None = None, seed: int = 0) -> None:
        if fire_at is not None and fire_at < 0:
            raise ValueError("fire_at must be >= 0")
        self.fire_at = fire_at
        self.seed = seed
        self.rng = random.Random(seed)
        self.crossings = 0
        self.sites: list[str] = []
        self.fired: SimulatedCrash | None = None

    def crossing(self, site: str) -> None:
        """Record one boundary crossing; raise if this is the armed one."""
        index = self.crossings
        self.crossings += 1
        self.sites.append(site)
        if self.fired is None and self.fire_at is not None and index == self.fire_at:
            self.fired = SimulatedCrash(site, index)
            raise self.fired

    def torn_length(self, frame_len: int) -> int:
        """How many bytes of an in-flight frame hit disk before the crash.

        A crash before fsync leaves an arbitrary prefix of the frame on
        disk (possibly none of it, never all of it — a fully written frame
        is the post-fsync case).  Seeded, so a given (seed, crash point)
        always tears the same way.
        """
        if frame_len <= 0:
            return 0
        return self.rng.randrange(frame_len)
