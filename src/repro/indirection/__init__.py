"""i3-style anonymous indirection (paper Section 5.2, approach 3).

The owner-anonymous WhoPay extension removes the owner's identity from the
coin and replaces it with a *handle*: ``C = {h_CU, pk_CU}_skB``.  Messages
for the coin's owner are sent to the handle; an Internet Indirection
Infrastructure (i3, Stoica et al., SIGCOMM 2002) trigger forwards them to
whatever node the owner registered — so the payee cannot tell whether it is
talking to the owner or a random peer.
"""

from repro.indirection.i3 import I3Overlay, TriggerError

__all__ = ["I3Overlay", "TriggerError"]
