"""A minimal Internet Indirection Infrastructure overlay.

i3's core abstraction: receivers insert a *trigger* ``(id, addr)`` into the
overlay; senders send packets to ``id``; the overlay forwards to ``addr``.
Sender and receiver never learn each other's addresses from the exchange —
which is exactly the pseudonymity the owner-anonymous coin extension needs.

Triggers are spread over the i3 servers by consistent hashing of the handle,
so forwarding load distributes like the rest of the system.  Trigger
insertion is authenticated with a handle-derived token: only the party that
minted the handle (the coin owner, who derived it from the coin secret) can
claim it — without this, anyone could hijack a coin's control channel.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.primitives import constant_time_eq
from repro.net.node import Node
from repro.net.rpc import RpcClient
from repro.net.transport import NetworkError, NodeOffline, Transport


#: Virtual-time budget for one overlay RPC (WP114): generous enough that it
#: only cuts off pathological jitter accumulation, never the common case.
I3_DEADLINE = 30.0


class TriggerError(Exception):
    """Trigger insertion/claim failure."""


class _I3Server(Node):
    """One overlay server holding a shard of the trigger table."""

    def __init__(self, transport: Transport, address: str) -> None:
        super().__init__(transport, address)
        # handle -> (claim_token_hash, forward_address)
        self.triggers: dict[bytes, tuple[bytes, str]] = {}
        self.on("i3.insert", self._handle_insert)
        self.on("i3.remove", self._handle_remove)
        self.on("i3.send", self._handle_send)

    def _handle_insert(self, src: str, payload: dict) -> dict:
        handle: bytes = payload["handle"]
        token: bytes = payload["token"]
        if not isinstance(handle, bytes) or not isinstance(token, bytes):
            return {"ok": False, "reason": "malformed trigger request"}
        stored = self.triggers.get(handle)
        # Token checks are constant-time: the claim token is the secret that
        # guards a coin's control channel, so the comparison must not leak
        # how many prefix bytes of a guess were right.
        if stored is not None and not constant_time_eq(stored[0], hashlib.sha256(token).digest()):
            return {"ok": False, "reason": "handle already claimed"}
        if not constant_time_eq(hashlib.sha256(b"i3-handle|" + token).digest(), handle):
            return {"ok": False, "reason": "token does not derive the handle"}
        self.triggers[handle] = (hashlib.sha256(token).digest(), payload["forward_to"])
        return {"ok": True, "reason": None}

    def _handle_remove(self, src: str, payload: dict) -> dict:
        handle: bytes = payload["handle"]
        token: bytes = payload["token"]
        if not isinstance(handle, bytes) or not isinstance(token, bytes):
            return {"ok": False, "reason": "malformed trigger request"}
        stored = self.triggers.get(handle)
        if stored is None:
            return {"ok": True, "reason": None}
        if not constant_time_eq(stored[0], hashlib.sha256(token).digest()):
            return {"ok": False, "reason": "not the trigger owner"}
        del self.triggers[handle]
        return {"ok": True, "reason": None}

    def _handle_send(self, src: str, payload: dict) -> Any:
        handle: bytes = payload["handle"]
        stored = self.triggers.get(handle)
        if stored is None:
            raise NetworkError("no trigger for handle")
        _token_hash, forward_to = stored
        # Forward on behalf of the sender; the receiver sees the i3 server as
        # the source, never the original sender's address.
        return self.request(forward_to, payload["kind"], payload["payload"])


class I3Overlay:
    """Client API for the indirection overlay."""

    def __init__(self, transport: Transport, size: int = 4, prefix: str = "i3") -> None:
        if size < 1:
            raise ValueError("overlay needs at least one server")
        self.transport = transport
        # Client-side sends carry the caller's src; route through a
        # transport-bound RPC client like the DHT fabrics do.
        self.rpc = RpcClient(transport=transport)
        self.servers = [_I3Server(transport, f"{prefix}-{i}") for i in range(size)]

    @staticmethod
    def mint_handle(secret_material: bytes) -> tuple[bytes, bytes]:
        """Derive ``(handle, claim_token)`` from private material.

        The token is the SHA-256 preimage of the handle, so publishing the
        handle (inside a coin) commits to it while only the minter can later
        claim the trigger.
        """
        token = hashlib.sha256(b"i3-token|" + secret_material).digest()
        handle = hashlib.sha256(b"i3-handle|" + token).digest()
        return handle, token

    def _server_for(self, handle: bytes) -> _I3Server:
        index = int.from_bytes(hashlib.sha1(handle).digest(), "big") % len(self.servers)
        return self.servers[index]

    def insert_trigger(self, handle: bytes, token: bytes, forward_to: str, src: str) -> None:
        """Register ``forward_to`` as the receiver for ``handle``."""
        server = self._server_for(handle)
        result = self.rpc.call(
            server.address,
            "i3.insert",
            {"handle": handle, "token": token, "forward_to": forward_to},
            src=src,
            deadline=I3_DEADLINE,
        )
        if not result["ok"]:
            raise TriggerError(result["reason"])

    def remove_trigger(self, handle: bytes, token: bytes, src: str) -> None:
        """Remove a trigger (owner only)."""
        server = self._server_for(handle)
        result = self.rpc.call(
            server.address,
            "i3.remove",
            {"handle": handle, "token": token},
            src=src,
            deadline=I3_DEADLINE,
        )
        if not result["ok"]:
            raise TriggerError(result["reason"])

    def send(self, src: str, handle: bytes, kind: str, payload: Any) -> Any:
        """Send a request to whoever holds the trigger for ``handle``.

        Raises :class:`~repro.net.transport.NetworkError` if no trigger is
        registered or the receiver is offline — which is how callers detect
        "owner unreachable, fall back to the broker".
        """
        server = self._server_for(handle)
        return self.rpc.call(
            server.address,
            "i3.send",
            {"handle": handle, "kind": kind, "payload": payload},
            src=src,
            deadline=I3_DEADLINE,
        )
