"""Wallet persistence: serialize a peer's monetary state across restarts.

Coins are bearer instruments held as key material, so losing process state
means losing money — a production wallet must persist.  This module exports
everything a peer needs to resume exactly where it stopped:

* the identity keypair (the broker account is bound to it),
* the group member key (re-registration would create a new judge identity),
* every held coin (certificate, holder secret, proof binding),
* every owned coin (certificate, coin secret, current binding,
  relinquishment audit trail, lazy-sync flags, sequence floor).

The blob is a canonical-codec value, so it is deterministic and versioned;
it contains raw secrets — encrypt at rest with
:func:`repro.anonymity.cipher.seal_box` if the storage medium is untrusted
(:func:`export_peer_state` takes an optional key to do exactly that).
"""

from __future__ import annotations

from typing import Any

from repro.anonymity.cipher import open_box, seal_box
from repro.core.coin import Coin, CoinBinding
from repro.core.errors import VerificationFailed
from repro.core.peer import Peer
from repro.core.protocol import decode_signed
from repro.crypto.group_signature import GroupMemberKey
from repro.crypto.keys import KeyPair
from repro.messages.codec import decode, encode
from repro.store import records as wallet_records

FORMAT = "whopay.wallet.v1"
BROKER_FORMAT = "whopay.broker.v1"


def export_broker_state(broker, encryption_key: bytes | None = None) -> bytes:
    """Serialize the broker's monetary state (the mint must survive too).

    Covers the signing key, every account, the valid-coin registry, the
    double-spend ledger, the downtime bindings, the owner index, and the
    RPC replay cache — the state whose loss would either destroy money
    (accounts), re-enable double spending (the deposited set), or break
    exactly-once semantics for a retry that straddles a restart (the
    dedupe entries).
    """
    blob = encode(
        {
            "format": BROKER_FORMAT,
            "address": broker.address,
            "signing_x": broker.keypair.x,
            "total_opened": broker.total_opened,
            "accounts": [
                {"name": name, "identity_y": account.identity.y, "balance": account.balance}
                for name, account in broker.accounts.items()
            ],
            "valid_coins": [coin.encode() for coin in broker.valid_coins.values()],
            "deposited": [
                {"coin_y": coin_y, "envelope": envelope}
                for coin_y, envelope in broker.deposited.items()
            ],
            "downtime": [
                {
                    "coin_y": coin_y,
                    "binding": binding.signed.encode(),
                }
                for coin_y, binding in broker.downtime_bindings.items()
            ],
            "owner_coins": [
                {"owner": owner, "coins": sorted(coins)}
                for owner, coins in broker.owner_coins.items()
            ],
            "pending_sync": [
                {"owner": owner, "coins": sorted(coins)}
                for owner, coins in broker.pending_sync.items()
            ],
            "replay_cache": [
                {"kind": kind, "idem": idem, "result": result}
                for (kind, idem), result in broker.replay_cache.snapshot_entries()
            ],
            # Federation state: in-flight cross-shard handoffs (source side)
            # and applied prepare ids (destination side).  Both must survive
            # a snapshot+restart or exactly-once handoffs break.
            "pending_handoffs": [
                broker.pending_handoffs[h] for h in sorted(broker.pending_handoffs)
            ],
            "handoffs_seen": sorted(broker.handoffs_seen),
        }
    )
    if encryption_key is not None:
        return b"enc:" + seal_box(encryption_key, blob)
    return blob


def restore_broker_state(broker, blob: bytes, encryption_key: bytes | None = None) -> None:
    """Load exported state into a freshly constructed broker.

    Restores the signing key first (coins must keep verifying), then
    re-validates every stored coin certificate against it before accepting
    it back into the registry.
    """
    from repro.core.coin import Coin
    from repro.crypto.keys import PublicKey

    if blob.startswith(b"enc:"):
        if encryption_key is None:
            raise VerificationFailed("state is encrypted; key required")
        blob = open_box(encryption_key, blob[4:])
    state = decode(blob)
    if not isinstance(state, dict) or state.get("format") != BROKER_FORMAT:
        raise VerificationFailed("unrecognized broker-state format")

    broker.keypair = KeyPair.from_secret(broker.params, state["signing_x"])
    from repro.core.broker import Account

    broker.accounts.clear()
    for entry in state["accounts"]:
        broker.accounts[entry["name"]] = Account(
            identity=PublicKey(params=broker.params, y=entry["identity_y"]),
            balance=entry["balance"],
        )
    broker.valid_coins.clear()
    for coin_bytes in state["valid_coins"]:
        coin = Coin(cert=decode_signed(coin_bytes, broker.params))
        if not coin.verify(broker.keypair.public):
            raise VerificationFailed("stored coin certificate fails under the restored key")
        broker.valid_coins[coin.coin_y] = coin
    broker.deposited.clear()
    for entry in state["deposited"]:
        broker.deposited[entry["coin_y"]] = entry["envelope"]
    broker.downtime_bindings.clear()
    for entry in state["downtime"]:
        binding = CoinBinding(
            signed=decode_signed(entry["binding"], broker.params), via_broker=True
        )
        broker.downtime_bindings[entry["coin_y"]] = binding
    broker.owner_coins.clear()
    for entry in state["owner_coins"]:
        broker.owner_coins[entry["owner"]] = set(entry["coins"])
    broker.pending_sync.clear()
    for entry in state["pending_sync"]:
        broker.pending_sync[entry["owner"]] = set(entry["coins"])
    if "total_opened" in state:
        broker.total_opened = state["total_opened"]
    else:
        # Pre-durability blob: reconstruct the conservation baseline from
        # what it does record (balances + live coin value).
        broker.total_opened = (
            sum(account.balance for account in broker.accounts.values())
            + broker.circulating_value()
        )
    broker.replay_cache.restore_entries(
        [
            ((entry["kind"], entry["idem"]), entry["result"])
            for entry in state.get("replay_cache", [])
        ]
    )
    broker.pending_handoffs.clear()
    for record in state.get("pending_handoffs", []):
        broker.pending_handoffs[record["h"]] = record
    broker.handoffs_seen.clear()
    broker.handoffs_seen.update(state.get("handoffs_seen", []))


def export_peer_state(peer: Peer, encryption_key: bytes | None = None) -> bytes:
    """Serialize ``peer``'s monetary state; optionally encrypted at rest."""
    held_entries = [wallet_records.held_entry(held) for held in peer.wallet.values()]
    owned_entries = [wallet_records.owned_entry(state) for state in peer.owned.values()]
    blob = encode(
        {
            "format": FORMAT,
            "address": peer.address,
            "identity_x": peer.identity.x,
            "member_x": peer.member_key.x,
            "member_h": peer.member_key.h,
            "held": held_entries,
            "owned": owned_entries,
        }
    )
    if encryption_key is not None:
        return b"enc:" + seal_box(encryption_key, blob)
    return blob


def restore_peer_state(peer: Peer, blob: bytes, encryption_key: bytes | None = None) -> int:
    """Load exported state into a (freshly constructed) ``peer``.

    Replaces the peer's identity and member keys with the stored ones and
    rebuilds both wallets, verifying every certificate and binding against
    the broker key on the way in (a corrupted store must not inject bogus
    coins).  Returns the number of coins restored.
    """
    if blob.startswith(b"enc:"):
        if encryption_key is None:
            raise VerificationFailed("state is encrypted; key required")
        blob = open_box(encryption_key, blob[4:])
    state = decode(blob)
    if not isinstance(state, dict) or state.get("format") != FORMAT:
        raise VerificationFailed("unrecognized wallet format")
    if state["address"] != peer.address:
        raise VerificationFailed(
            f"state belongs to {state['address']!r}, not {peer.address!r}"
        )

    peer.identity = KeyPair.from_secret(peer.params, state["identity_x"])
    peer.member_key = GroupMemberKey(
        params=peer.params, x=state["member_x"], h=state["member_h"]
    )

    restored = 0
    peer.wallet.clear()
    for entry in state["held"]:
        held = wallet_records.restore_held(peer, entry)
        peer.wallet[held.coin.coin_y] = held
        # Re-arm real-time monitoring: DHT subscriptions are transport-side
        # state and do not survive the restart, so re-subscribe per coin.
        if peer.detection is not None:
            peer.detection.subscribe(peer, held.coin.coin_y)
        restored += 1

    peer.owned.clear()
    for entry in state["owned"]:
        owned = wallet_records.restore_owned(peer, entry)
        peer.owned[owned.coin.coin_y] = owned
        restored += 1
    return restored


def save_broker_snapshot(broker, store, encryption_key: bytes | None = None) -> int:
    """Snapshot ``broker`` into its durable ``store`` and compact the log.

    Returns the LSN the snapshot covers.  The broker keeps journaling new
    mutations to the same store afterwards; recovery prefers the snapshot
    and replays only later records.
    """
    return store.snapshot(export_broker_state(broker, encryption_key=encryption_key))


def save_peer_snapshot(peer: Peer, store, encryption_key: bytes | None = None) -> int:
    """Snapshot ``peer``'s wallet into its durable ``store``; returns the LSN."""
    return store.snapshot(export_peer_state(peer, encryption_key=encryption_key))
