"""Consistent-hash partitioning of the coin-id and account spaces.

The single broker is the paper's scaling wall (fig2/fig6: load linear in
N).  The federation splits the broker's state across M *shards* by
consistent hashing — the same SHA-1 ring discipline the DHT layer uses
(:func:`repro.dht.chord.key_to_id`), with virtual points per shard so the
arc lengths even out:

* a **coin** (``valid_coins`` entry, its deposit ledger row, its downtime
  binding, its pending-sync membership) lives on the shard owning
  ``hash(coin_y)``;
* an **account** (balance + identity) lives on the shard owning
  ``hash(account name)``.

Routing is therefore derivable by anyone who knows the shard roster — the
:class:`ShardMap` is plain data, shipped to every client, with no
rebalancing protocol (the roster is fixed at federation construction;
growing M is a future migration concern, not a runtime one).

Operations that touch a coin and an account on *different* shards
(purchase, deposit, top-up) become two-step handoffs between shards; see
:mod:`repro.core.broker` and docs/FEDERATION.md.
"""

from __future__ import annotations

import bisect

from repro.dht.chord import key_to_id

#: Default virtual points per shard.  512 points keep the max/mean arc
#: imbalance within a few percent for small M (64 points left one shard
#: of four owning a third of the key space), which is what the
#: bench_federation flattening floor budgets for.  Construction cost is
#: M x 512 SHA-1 hashes once per federation; lookups stay O(log ring).
DEFAULT_POINTS_PER_SHARD = 512


class ShardMap:
    """An immutable consistent-hash ring over broker shard addresses.

    Deterministic: two ShardMaps built from the same roster agree on every
    placement, so clients and shards never need to exchange routing state.
    """

    def __init__(
        self, addresses: list[str] | tuple[str, ...], points_per_shard: int = DEFAULT_POINTS_PER_SHARD
    ) -> None:
        if not addresses:
            raise ValueError("a shard map needs at least one shard address")
        if len(set(addresses)) != len(addresses):
            raise ValueError("shard addresses must be unique")
        if points_per_shard < 1:
            raise ValueError("points_per_shard must be >= 1")
        self.addresses: tuple[str, ...] = tuple(addresses)
        self.points_per_shard = points_per_shard
        ring: dict[int, str] = {}
        for address in self.addresses:
            for point in range(points_per_shard):
                position = key_to_id(f"shard:{address}#{point}".encode())
                # A full SHA-1 collision between virtual points is beyond
                # unlikely; first writer wins keeps the map deterministic.
                ring.setdefault(position, address)
        self._points = sorted(ring)
        self._owners = [ring[position] for position in self._points]

    def __len__(self) -> int:
        return len(self.addresses)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.addresses == other.addresses
            and self.points_per_shard == other.points_per_shard
        )

    # -- placement ----------------------------------------------------------

    def shard_for_key(self, key: bytes) -> str:
        """The shard owning ``key``'s ring successor."""
        position = key_to_id(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def shard_for_coin(self, coin_y: int) -> str:
        """Home shard of the coin identified by public key value ``coin_y``."""
        return self.shard_for_key(b"coin|" + coin_y.to_bytes((coin_y.bit_length() + 7) // 8 or 1, "big"))

    def shard_for_account(self, name: str) -> str:
        """Home shard of the account named ``name``."""
        return self.shard_for_key(b"acct|" + name.encode())

    # -- diagnostics --------------------------------------------------------

    def spread(self, coin_ys: list[int]) -> dict[str, int]:
        """How many of ``coin_ys`` land on each shard (bench/diagnostics)."""
        counts = {address: 0 for address in self.addresses}
        for coin_y in coin_ys:
            counts[self.shard_for_coin(coin_y)] += 1
        return counts
