"""Protocol message kinds and payload helpers (paper Section 4.2).

Each of the ten coarse-grained WhoPay operations maps to one or more typed
request/response exchanges.  This module centralizes the message *kind*
strings, the payload construction, and the payload-shape validation, so the
broker and peer endpoint code stays focused on protocol logic.

Network-anonymity note: the paper assumes network-level anonymity (onion
routing / Tarzan, Section 4.3) is layered underneath when desired; transport
addresses here are therefore treated as routing artifacts, not identities.
Application-level identity is carried only by keys and signatures, which is
what the anonymity analysis is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.dsa import DsaSignature
from repro.crypto.group_signature import GroupSignature
from repro.crypto.keys import PublicKey
from repro.crypto.params import DlogParams
from repro.messages.codec import decode, encode
from repro.messages.envelope import DualSignedMessage, SignedMessage

# -- message kinds ------------------------------------------------------------

# peer -> broker
PURCHASE = "whopay.purchase"
PURCHASE_BATCH = "whopay.purchase_batch"
TOP_UP = "whopay.top_up"
DEPOSIT = "whopay.deposit"
DOWNTIME_TRANSFER = "whopay.downtime_transfer"
DOWNTIME_RENEWAL = "whopay.downtime_renewal"
SYNC_CHALLENGE = "whopay.sync_challenge"
SYNC = "whopay.sync"
BINDING_QUERY = "whopay.binding_query"  # lazy-sync check against the broker

# broker shard -> broker shard (federation; see docs/FEDERATION.md)
XSHARD_PREPARE = "whopay.xshard_prepare"

# peer -> peer
ISSUE_OFFER = "whopay.issue_offer"
ISSUE_COMPLETE = "whopay.issue_complete"
TRANSFER_OFFER = "whopay.transfer_offer"
TRANSFER_REQUEST = "whopay.transfer_request"
TRANSFER_COMPLETE = "whopay.transfer_complete"
RENEW_REQUEST = "whopay.renew_request"

# real-time detection
BINDING_UPDATE = "binding.update"


# -- envelope (de)serialization -------------------------------------------------
#
# Envelopes cross the transport as canonical bytes; these helpers rebuild the
# typed objects on the receiving side.


def encode_signed(message: SignedMessage) -> bytes:
    """Bytes form of a single-signed envelope."""
    return message.encode()


def decode_signed(data: bytes, params: DlogParams) -> SignedMessage:
    """Rebuild a :class:`SignedMessage` from :func:`encode_signed` output."""
    fields = decode(data)
    return SignedMessage(
        payload_bytes=fields["payload"],
        signer=PublicKey(params=params, y=fields["signer_y"]),
        # ``sig_c`` (the batch-verification hint) is optional: envelopes
        # sealed by older peers simply verify one at a time.
        signature=DsaSignature(
            r=fields["sig_r"], s=fields["sig_s"], commit=fields.get("sig_c")
        ),
    )


def encode_dual(message: DualSignedMessage) -> bytes:
    """Bytes form of a dual-signed (holder) envelope.

    ``gs_t`` carries the group signature's per-clause commitment hints so
    the broker can batch-verify holder envelopes
    (:func:`repro.crypto.group_signature.group_batch_verify`); like
    ``sig_c`` on the inner envelope it is untrusted accelerator metadata —
    stripping it merely costs the receiver exact verification.
    """
    gs = message.group_signature
    fields = {
        "inner": message.inner.encode(),
        "roster_version": message.roster_version,
        "gs_c1": gs.ciphertext.c1,
        "gs_c2": gs.ciphertext.c2,
        "gs_challenges": list(gs.challenges),
        "gs_responses_r": list(gs.responses_r),
        "gs_responses_x": list(gs.responses_x),
    }
    if gs.commitments is not None:
        fields["gs_t"] = [list(hint) for hint in gs.commitments]
    return encode(fields)


def decode_dual(data: bytes, params: DlogParams) -> DualSignedMessage:
    """Rebuild a :class:`DualSignedMessage` from :func:`encode_dual` output."""
    from repro.crypto.elgamal import ElGamalCiphertext

    fields = decode(data)
    inner = decode_signed(fields["inner"], params)
    hints = fields.get("gs_t")
    signature = GroupSignature(
        ciphertext=ElGamalCiphertext(c1=fields["gs_c1"], c2=fields["gs_c2"]),
        challenges=tuple(fields["gs_challenges"]),
        responses_r=tuple(fields["gs_responses_r"]),
        responses_x=tuple(fields["gs_responses_x"]),
        commitments=None if hints is None else tuple(tuple(hint) for hint in hints),
    )
    return DualSignedMessage(
        inner=inner,
        group_signature=signature,
        roster_version=fields["roster_version"],
    )


# -- payload shapes -----------------------------------------------------------


@dataclass(frozen=True)
class PurchaseRequest:
    """Body of the identity-signed purchase message.

    ``anonymous`` selects the Section 5.2 approach-3 coin format: the broker
    signs ``{h_CU, pk_CU}`` with no owner identity inside, and ``handle`` is
    the i3 rendezvous handle for reaching the owner.  The *purchase* itself
    stays identified (the broker debits a named account either way — the
    paper accepts that "the broker knows who made the initial purchase").
    """

    coin_y: int
    value: int
    account: str
    anonymous: bool = False
    handle: bytes | None = None

    def to_payload(self) -> dict[str, Any]:
        """Codec-ready dict."""
        return {
            "kind": "whopay.purchase_request",
            "coin_y": self.coin_y,
            "value": self.value,
            "account": self.account,
            "anonymous": self.anonymous,
            "handle": self.handle,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "PurchaseRequest":
        """Validate and rebuild; raises ``ValueError`` on bad shape."""
        if not isinstance(payload, dict) or payload.get("kind") != "whopay.purchase_request":
            raise ValueError("not a purchase request")
        if not isinstance(payload.get("coin_y"), int) or not isinstance(payload.get("value"), int):
            raise ValueError("malformed purchase request")
        if payload["value"] <= 0:
            raise ValueError("coin value must be positive")
        anonymous = bool(payload.get("anonymous", False))
        handle = payload.get("handle")
        if anonymous and not isinstance(handle, bytes):
            raise ValueError("anonymous purchase requires a handle")
        return cls(
            coin_y=payload["coin_y"],
            value=payload["value"],
            account=str(payload["account"]),
            anonymous=anonymous,
            handle=handle,
        )


@dataclass(frozen=True)
class BatchPurchaseRequest:
    """Body of an identity-signed batch purchase (Section 4.2: "It should be
    straightforward to modify this procedure to purchase coins in batch").

    One signature and one round trip cover many coins — the batch is the
    whole point, so the request carries a list of (coin key, value) pairs.
    """

    coins: tuple[tuple[int, int], ...]  # (coin_y, value) pairs
    account: str

    def to_payload(self) -> dict[str, Any]:
        """Codec-ready dict."""
        return {
            "kind": "whopay.batch_purchase_request",
            "coins": [list(pair) for pair in self.coins],
            "account": self.account,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "BatchPurchaseRequest":
        """Validate and rebuild; raises ``ValueError`` on bad shape."""
        if not isinstance(payload, dict) or payload.get("kind") != "whopay.batch_purchase_request":
            raise ValueError("not a batch purchase request")
        raw = payload.get("coins")
        if not isinstance(raw, tuple) or not raw:
            raise ValueError("batch must contain at least one coin")
        coins = []
        for entry in raw:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise ValueError("malformed batch entry")
            coin_y, value = entry
            if not isinstance(coin_y, int) or not isinstance(value, int) or value <= 0:
                raise ValueError("malformed batch entry")
            coins.append((coin_y, value))
        if len({coin_y for coin_y, _ in coins}) != len(coins):
            raise ValueError("duplicate coin keys in batch")
        return cls(coins=tuple(coins), account=str(payload["account"]))


@dataclass(frozen=True)
class HolderOperation:
    """Body of a dual-signed holder message (deposit / transfer / renewal).

    ``op`` selects the operation; the coin and the holder's current proof
    binding travel as encoded envelopes; ``new_holder_y`` is present for
    transfers; ``payout_to`` for deposits; ``nonce`` binds the exchange to
    the payee's freshness challenge.
    """

    op: str
    coin_cert: bytes
    proof_binding: bytes
    proof_via_broker: bool
    new_holder_y: int | None = None
    payout_to: str | None = None
    nonce: bytes = b""
    #: top_up only: how much value to add and the signed debit authorization
    #: (an identity-signed ``debit_auth`` envelope for the funding account).
    delta: int | None = None
    funding_auth: bytes | None = None

    def to_payload(self) -> dict[str, Any]:
        """Codec-ready dict."""
        return {
            "kind": "whopay.holder_op",
            "op": self.op,
            "coin_cert": self.coin_cert,
            "proof_binding": self.proof_binding,
            "proof_via_broker": self.proof_via_broker,
            "new_holder_y": self.new_holder_y,
            "payout_to": self.payout_to,
            "nonce": self.nonce,
            "delta": self.delta,
            "funding_auth": self.funding_auth,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "HolderOperation":
        """Validate and rebuild; raises ``ValueError`` on bad shape."""
        if not isinstance(payload, dict) or payload.get("kind") != "whopay.holder_op":
            raise ValueError("not a holder operation")
        op = payload.get("op")
        if op not in ("deposit", "transfer", "renewal", "top_up"):
            raise ValueError(f"unknown holder op {op!r}")
        if op == "transfer" and not isinstance(payload.get("new_holder_y"), int):
            raise ValueError("transfer without new holder key")
        if op == "deposit" and not isinstance(payload.get("payout_to"), str):
            raise ValueError("deposit without payout account")
        if op == "top_up":
            if not isinstance(payload.get("delta"), int) or payload["delta"] <= 0:
                raise ValueError("top_up needs a positive delta")
            if not isinstance(payload.get("funding_auth"), bytes):
                raise ValueError("top_up needs a funding authorization")
        return cls(
            op=op,
            coin_cert=payload["coin_cert"],
            proof_binding=payload["proof_binding"],
            proof_via_broker=bool(payload["proof_via_broker"]),
            new_holder_y=payload.get("new_holder_y"),
            payout_to=payload.get("payout_to"),
            nonce=payload.get("nonce", b""),
            delta=payload.get("delta"),
            funding_auth=payload.get("funding_auth"),
        )
