"""Real-time double-spending detection (paper Section 5.1).

The mechanism in the paper's words:

    "The idea is to make every peer's coin binding list globally readable.
    To make sure every coin owner publishes its list faithfully, a peer does
    not accept payment until verifying that the relevant public binding has
    been properly updated.  Each peer constantly monitors the public
    bindings for the coins it currently holds, and any unexpected update can
    trigger appropriate actions."

:class:`DetectionService` wires the pieces together:

* owners (and the broker, during downtime) publish each new binding to the
  access-controlled DHT *before* completing the payment;
* payees verify the public binding matches the binding they were handed
  before accepting (enforced in ``Peer._handle_payment_complete``);
* holders subscribe to their coins through the notification hub; an update
  that re-binds a coin away from the subscriber's holder key raises an
  :class:`~repro.core.peer.Alarm` on the victim — in real time, not at
  deposit time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.coin import CoinBinding, OwnedCoinState
from repro.crypto.params import DlogParams
from repro.dht.binding_store import BindingRecord, BindingStore, WriteRejected
from repro.dht.notify import NotificationHub

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import Broker
    from repro.core.peer import Peer


class DetectionService:
    """Publish/verify/monitor façade over the DHT binding store."""

    def __init__(self, store: BindingStore, hub: NotificationHub, params: DlogParams) -> None:
        self.store = store
        self.hub = hub
        self.params = params
        self.publishes = 0
        self.rejected_publishes = 0

    # -- publishing ----------------------------------------------------------

    def _record_for(self, binding: CoinBinding) -> BindingRecord:
        signed = binding.signed
        return BindingRecord(
            payload=signed.payload_bytes,
            signer_y=signed.signer.y,
            sig_r=signed.signature.r,
            sig_s=signed.signature.s,
            via_broker=binding.via_broker,
            sig_c=signed.signature.commit,
        )

    def publish_owner(self, peer: "Peer", state: OwnedCoinState, binding: CoinBinding) -> None:
        """Owner-side publish on issue/transfer/renewal.

        The DHT's validator re-checks the signature and sequence monotonicity;
        a rejection here means the owner attempted a rollback and is surfaced
        immediately rather than swallowed.
        """
        self._publish(self._record_for(binding), src=peer.address)

    def publish_broker(self, broker: "Broker", binding: CoinBinding) -> None:
        """Broker-side publish on downtime transfer/renewal."""
        self._publish(self._record_for(binding), src=broker.address)

    def _publish(self, record: BindingRecord, src: str) -> None:
        try:
            self.store.publish(record, src=src)
            self.publishes += 1
        except WriteRejected:
            self.rejected_publishes += 1
            raise

    # -- reading ----------------------------------------------------------------

    def fetch_binding(self, src: str, coin_y: int) -> CoinBinding | None:
        """Read the public binding of ``coin_y`` (payee check, owner check)."""
        from repro.core.protocol import decode_signed

        record = self.store.fetch(coin_y, src=src)
        if record is None:
            return None
        # Rebuild the typed binding from the published record.
        from repro.crypto.dsa import DsaSignature
        from repro.crypto.keys import PublicKey
        from repro.messages.envelope import SignedMessage

        signed = SignedMessage(
            payload_bytes=record.payload,
            signer=PublicKey(params=self.params, y=record.signer_y),
            signature=DsaSignature(r=record.sig_r, s=record.sig_s, commit=record.sig_c),
        )
        return CoinBinding(signed=signed, via_broker=record.via_broker)

    # -- monitoring ----------------------------------------------------------------

    def subscribe(self, peer: "Peer", coin_y: int) -> None:
        """Register a holder for push updates on its coin."""
        self.hub.subscribe(coin_y, peer.address)

    def unsubscribe(self, peer: "Peer", coin_y: int) -> None:
        """Stop watching a coin (after spending/depositing it)."""
        self.hub.unsubscribe(coin_y, peer.address)
