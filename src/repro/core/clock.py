"""A controllable clock shared by all protocol entities.

Coin expiration (Section 4.1: "Coins must be renewed periodically to retain
their value") makes the protocol time-dependent.  All entities read the same
injected :class:`Clock`, which tests and simulations advance explicitly, so
expiry behaviour is deterministic.  Times are seconds; the paper's renewal
period of 3 days is :data:`DEFAULT_RENEWAL_PERIOD`.
"""

from __future__ import annotations

HOUR = 3600.0
DAY = 24 * HOUR

#: Paper Section 6.1: "We use a renewal period of 3 days".
DEFAULT_RENEWAL_PERIOD = 3 * DAY


class Clock:
    """A monotonically advancing simulated wall clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError("clock cannot move backwards")
        self._now = timestamp
        return self._now
