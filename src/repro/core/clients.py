"""Typed endpoint facades over the protocol's message kinds.

Every internal caller used to hand-roll ``transport.request(src, dst, kind,
payload)``; these facades are now the only internal way protocol traffic is
sent.  One method per message kind, so:

* idempotency keys and per-call timeouts are threaded in exactly one place
  (every *mutating* exchange gets a fresh key; reads go bare);
* retry exhaustion maps to one structured error,
  :class:`~repro.core.errors.ServiceUnavailable`, instead of each caller
  interpreting raw transport exceptions;
* the retry policy is configured once per endpoint (default: single
  attempt — raw transport semantics and wire format — with chaos-grade
  policies opt-in via the ``policy`` argument).

A facade binds either to a :class:`~repro.net.node.Node` (normal protocol
endpoints; traffic follows the node's ``send_raw``, so onion-routed nodes
stay onion-routed) or to a bare transport with an explicit source address
(infrastructure senders like the DHT notification hub).
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core import protocol
from repro.core.errors import ServiceUnavailable
from repro.net.rpc import (
    RetriesExhausted,
    RetryPolicy,
    RpcClient,
    RpcTimeout,
    new_idempotency_key,
)
from repro.net.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class EndpointClient:
    """Shared plumbing: an RPC client plus the exhaustion→error mapping.

    ``breakers`` (a :class:`~repro.net.liveness.BreakerBoard`) puts every
    call on this facade behind per-destination circuit breakers — a
    tripped destination raises :class:`~repro.net.rpc.CircuitOpen` without
    consuming any retry budget.  ``deadline`` is the facade-wide per-call
    virtual-time budget (backoff plus accrued latency); individual calls
    may override it.
    """

    def __init__(
        self,
        node: "Node | None" = None,
        *,
        transport: Transport | None = None,
        src: str | None = None,
        policy: RetryPolicy | None = None,
        breakers: Any = None,
        deadline: float | None = None,
    ) -> None:
        self._rpc = RpcClient(node=node, transport=transport, policy=policy, breakers=breakers)
        self._src = src
        self.deadline = deadline

    @property
    def policy(self) -> RetryPolicy:
        """The retry policy every call on this facade runs under."""
        return self._rpc.policy

    @property
    def stats(self):
        """The underlying RPC telemetry (retries, recoveries, backoff)."""
        return self._rpc.stats

    @property
    def breakers(self):
        """The facade's circuit-breaker board (``None`` when not guarded)."""
        return self._rpc.breakers

    def _call(
        self,
        dst: str,
        kind: str,
        payload: Any,
        *,
        mutating: bool,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> Any:
        key = new_idempotency_key() if mutating else None
        try:
            return self._rpc.call(
                dst,
                kind,
                payload,
                src=self._src,
                idempotency_key=key,
                timeout=timeout,
                deadline=deadline if deadline is not None else self.deadline,
            )
        except (RetriesExhausted, RpcTimeout) as exc:
            raise ServiceUnavailable(
                f"{kind} to {dst} unavailable after {exc.attempts} attempt(s)",
                attempts=exc.attempts,
                last_error=exc.last_error,
            ) from exc


class BrokerClient(EndpointClient):
    """Peer→broker operations, one method per kind.

    Mutating operations (everything that moves value or commits broker
    state — including :meth:`sync_challenge`, whose handler mints a pending
    nonce) carry idempotency keys when the policy retries.

    Federation-aware: when constructed with a ``shard_map``, each call
    routes to the shard owning the operation's anchor key — purchases to
    the *account's* home (it debits there), holder operations and binding
    queries to the *coin's* home (circulation state lives there), syncs to
    an explicit shard (owners fan out over :meth:`shard_addresses`).
    Without a map every call goes to ``broker_address``, byte-identical to
    the standalone wire format.
    """

    def __init__(
        self,
        node: "Node",
        broker_address: str,
        policy: RetryPolicy | None = None,
        shard_map: Any = None,
        breakers: Any = None,
        deadline: float | None = None,
    ) -> None:
        super().__init__(node, policy=policy, breakers=breakers, deadline=deadline)
        self.broker_address = broker_address
        self.shard_map = shard_map

    def shard_addresses(self) -> tuple[str, ...]:
        """Every shard a federation spreads state over (one entry if none)."""
        if self.shard_map is None:
            return (self.broker_address,)
        return tuple(self.shard_map.addresses)

    def _route_account(self, account: str | None) -> str:
        if self.shard_map is None or account is None:
            return self.broker_address
        return self.shard_map.shard_for_account(account)

    def _route_coin(self, coin_y: int | None) -> str:
        if self.shard_map is None or coin_y is None:
            return self.broker_address
        return self.shard_map.shard_for_coin(coin_y)

    def purchase(
        self, signed_request: bytes, timeout: float | None = None, *, account: str | None = None
    ) -> bytes:
        """Mint one coin; returns the encoded coin certificate."""
        return self._call(
            self._route_account(account),
            protocol.PURCHASE,
            signed_request,
            mutating=True,
            timeout=timeout,
        )

    def purchase_batch(
        self, signed_request: bytes, timeout: float | None = None, *, account: str | None = None
    ) -> Any:
        """Mint a batch of coins; returns the list of encoded certificates."""
        return self._call(
            self._route_account(account),
            protocol.PURCHASE_BATCH,
            signed_request,
            mutating=True,
            timeout=timeout,
        )

    def deposit(
        self, dual_envelope: bytes, timeout: float | None = None, *, coin_y: int | None = None
    ) -> dict[str, Any]:
        """Redeem a held coin; returns the broker's result dict."""
        return self._call(
            self._route_coin(coin_y),
            protocol.DEPOSIT,
            dual_envelope,
            mutating=True,
            timeout=timeout,
        )

    def top_up(
        self, dual_envelope: bytes, timeout: float | None = None, *, coin_y: int | None = None
    ) -> bytes:
        """Increase a coin's value; returns the re-certified coin."""
        return self._call(
            self._route_coin(coin_y),
            protocol.TOP_UP,
            dual_envelope,
            mutating=True,
            timeout=timeout,
        )

    def downtime_transfer(
        self, dual_envelope: bytes, timeout: float | None = None, *, coin_y: int | None = None
    ) -> bytes:
        """Broker-served transfer (owner offline); returns the new binding."""
        return self._call(
            self._route_coin(coin_y),
            protocol.DOWNTIME_TRANSFER,
            dual_envelope,
            mutating=True,
            timeout=timeout,
        )

    def downtime_renewal(
        self, dual_envelope: bytes, timeout: float | None = None, *, coin_y: int | None = None
    ) -> bytes:
        """Broker-served renewal (owner offline); returns the new binding."""
        return self._call(
            self._route_coin(coin_y),
            protocol.DOWNTIME_RENEWAL,
            dual_envelope,
            mutating=True,
            timeout=timeout,
        )

    def sync_challenge(
        self, timeout: float | None = None, *, shard: str | None = None
    ) -> bytes:
        """Start a proactive sync; returns the broker's freshness nonce."""
        return self._call(
            shard or self.broker_address,
            protocol.SYNC_CHALLENGE,
            None,
            mutating=True,
            timeout=timeout,
        )

    def sync(
        self, signed_challenge: bytes, timeout: float | None = None, *, shard: str | None = None
    ) -> Any:
        """Complete a proactive sync; returns the missed-binding list."""
        return self._call(
            shard or self.broker_address,
            protocol.SYNC,
            signed_challenge,
            mutating=True,
            timeout=timeout,
        )

    def binding_query(self, coin_y: int, timeout: float | None = None) -> bytes | None:
        """Lazy-sync read of one coin's authoritative binding (idempotent read)."""
        return self._call(
            self._route_coin(coin_y),
            protocol.BINDING_QUERY,
            coin_y,
            mutating=False,
            timeout=timeout,
        )


class PeerClient(EndpointClient):
    """Peer→peer operations, one method per kind.

    The offer steps are mutating (the payee mints a holder key and records
    pending state), so a retried offer returns the *same* holder key and
    nonce instead of leaking abandoned pending entries.
    """

    def issue_offer(self, payee: str, coin_cert: bytes, timeout: float | None = None) -> dict[str, Any]:
        """Open an issue exchange; returns {holder_y, nonce}."""
        return self._call(payee, protocol.ISSUE_OFFER, coin_cert, mutating=True, timeout=timeout)

    def issue_complete(self, payee: str, payload: dict[str, Any], timeout: float | None = None) -> dict[str, Any]:
        """Deliver the signed binding closing an issue; returns {ok, reason}."""
        return self._call(payee, protocol.ISSUE_COMPLETE, payload, mutating=True, timeout=timeout)

    def transfer_offer(self, payee: str, coin_cert: bytes, timeout: float | None = None) -> dict[str, Any]:
        """Open a transfer exchange; returns {holder_y, nonce}."""
        return self._call(payee, protocol.TRANSFER_OFFER, coin_cert, mutating=True, timeout=timeout)

    def transfer_request(self, owner: str, payload: dict[str, Any], timeout: float | None = None) -> dict[str, Any]:
        """Ask the owner to re-bind a held coin; returns {binding}."""
        return self._call(owner, protocol.TRANSFER_REQUEST, payload, mutating=True, timeout=timeout)

    def transfer_complete(self, payee: str, payload: dict[str, Any], timeout: float | None = None) -> dict[str, Any]:
        """Deliver the new binding closing a transfer; returns {ok, reason}."""
        return self._call(payee, protocol.TRANSFER_COMPLETE, payload, mutating=True, timeout=timeout)

    def renew_request(self, owner: str, dual_envelope: bytes, timeout: float | None = None) -> bytes:
        """Ask the owner to renew a held coin; returns the new binding."""
        return self._call(owner, protocol.RENEW_REQUEST, dual_envelope, mutating=True, timeout=timeout)

    def binding_update(self, subscriber: str, record_bytes: bytes, timeout: float | None = None) -> None:
        """Push a public-binding change to a monitoring holder."""
        return self._call(
            subscriber, protocol.BINDING_UPDATE, record_bytes, mutating=True, timeout=timeout
        )
