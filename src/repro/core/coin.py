"""Coins, bindings, and wallet state (paper Section 4.1).

The WhoPay data model in one sentence: a **coin** is a broker-signed public
key, and who currently holds it is conveyed by a **binding** — an owner- (or
broker-)signed statement "coin ``pk_CU`` is now represented by ``pk_CV``" —
whose corresponding private key is known only to the holder.

Three views of a coin exist in the system:

* :class:`Coin` — the broker certificate ``C`` everyone can check.
* :class:`CoinBinding` — the latest ``{C, pk_holder, seq, exp_date}``
  signature; the holder keeps it as proof, the owner keeps it as state, and
  (with the Section 5.1 extension) the DHT publishes it to the world.
* wallet entries — :class:`HeldCoin` on the holder side (includes the holder
  secret key) and :class:`OwnedCoinState` on the owner side (includes the
  coin secret key and the relinquishment audit trail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.envelope import SignedMessage, seal


@dataclass(frozen=True)
class Coin:
    """The broker-signed coin certificate ``C``.

    Basic WhoPay (Section 4): ``C = {U, pk_CU}_skB`` — the owner's identity
    is inside the coin.  The owner-anonymous extension (Section 5.2,
    approach 3) drops the identity and optionally adds an i3 ``handle``:
    ``C = {h_CU, pk_CU}_skB``.
    """

    cert: SignedMessage

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        broker_keypair: KeyPair,
        coin_y: int,
        value: int,
        owner_address: str | None,
        owner_y: int | None,
        handle: bytes | None = None,
    ) -> "Coin":
        """Mint (sign) a coin certificate.  Broker-side only."""
        payload: dict[str, Any] = {
            "kind": "whopay.coin",
            "coin_y": coin_y,
            "value": value,
            "owner": owner_address,
            "owner_y": owner_y,
            "handle": handle,
        }
        return cls(cert=seal(broker_keypair, payload))

    @classmethod
    def build_batch(
        cls,
        broker_keypair: KeyPair,
        specs: list[dict[str, Any]],
    ) -> list["Coin"]:
        """Mint many certificates with one batched signing pass.

        ``specs`` entries carry the :meth:`build` keyword arguments
        (``coin_y``, ``value``, ``owner_address``, ``owner_y``, ``handle``).
        Output is bit-identical to calling :meth:`build` per spec — the
        batching only amortizes the signing-side modular inversions
        (:func:`repro.crypto.dsa.dsa_sign_batch`).
        """
        from repro.crypto.dsa import dsa_sign_batch
        from repro.messages.codec import encode

        payload_bytes = [
            encode(
                {
                    "kind": "whopay.coin",
                    "coin_y": spec["coin_y"],
                    "value": spec["value"],
                    "owner": spec.get("owner_address"),
                    "owner_y": spec.get("owner_y"),
                    "handle": spec.get("handle"),
                }
            )
            for spec in specs
        ]
        signatures = dsa_sign_batch(broker_keypair, payload_bytes)
        return [
            cls(
                cert=SignedMessage(
                    payload_bytes=raw,
                    signer=broker_keypair.public,
                    signature=signature,
                )
            )
            for raw, signature in zip(payload_bytes, signatures)
        ]

    # -- accessors ----------------------------------------------------------

    @property
    def payload(self) -> dict[str, Any]:
        """The decoded certificate payload."""
        return self.cert.payload

    @property
    def coin_y(self) -> int:
        """The coin's identifying public key value ``pk_CU``."""
        return self.payload["coin_y"]

    @property
    def value(self) -> int:
        """Denomination assigned at purchase."""
        return self.payload["value"]

    @property
    def owner_address(self) -> str | None:
        """Owner's network identity, or ``None`` for ownerless coins."""
        return self.payload["owner"]

    @property
    def owner_y(self) -> int | None:
        """Owner's identity public key, or ``None`` for ownerless coins."""
        return self.payload["owner_y"]

    @property
    def handle(self) -> bytes | None:
        """i3 handle for owner-anonymous coins, else ``None``."""
        return self.payload["handle"]

    @property
    def is_ownerless(self) -> bool:
        """True for Section 5.2 approach-3 coins."""
        return self.owner_address is None

    def coin_public_key(self, params: DlogParams) -> PublicKey:
        """The coin's public key as a verification key."""
        return PublicKey(params=params, y=self.coin_y)

    def verify_unsigned(self) -> bool:
        """Payload-shape check alone (no signature); pure predicate.

        Used by callers that fold the certificate signature into a
        randomized DSA batch with a request's other signatures.
        """
        payload = self.payload
        return (
            isinstance(payload, dict)
            and payload.get("kind") == "whopay.coin"
            and isinstance(payload.get("coin_y"), int)
            and isinstance(payload.get("value"), int)
            and payload["value"] > 0
        )

    def verify(self, broker_key: PublicKey) -> bool:
        """Check the broker's signature and payload shape; pure predicate."""
        if self.cert.signer.y != broker_key.y:
            return False
        if not self.cert.verify():
            return False
        return self.verify_unsigned()

    def encode(self) -> bytes:
        """Canonical bytes (for nesting in other payloads)."""
        return self.cert.encode()


@dataclass(frozen=True)
class CoinBinding:
    """``Coin_state = {C, pk_holder, seq, exp_date}`` signed by owner or broker.

    ``via_broker`` distinguishes the downtime flavour: the broker signs with
    its own key instead of the coin key (Section 4.2, downtime protocols).
    """

    signed: SignedMessage
    via_broker: bool

    @classmethod
    def build(
        cls,
        signer: KeyPair,
        coin_y: int,
        holder_y: int,
        seq: int,
        exp_date: float,
        via_broker: bool = False,
        nonce_pool: Any = None,
    ) -> "CoinBinding":
        """Sign a fresh binding.  ``signer`` is the coin keypair or broker's.

        ``nonce_pool`` threads through to :func:`repro.messages.envelope.seal`
        so the broker's per-flush binding minting can draw precomputed
        nonces (see :class:`repro.crypto.dsa.DsaNoncePool`).
        """
        payload = {
            "kind": "whopay.binding",
            "coin_y": coin_y,
            "holder_y": holder_y,
            "seq": seq,
            "exp_date": int(exp_date),
        }
        return cls(signed=seal(signer, payload, nonce_pool=nonce_pool), via_broker=via_broker)

    @property
    def payload(self) -> dict[str, Any]:
        """The decoded binding payload."""
        return self.signed.payload

    @property
    def coin_y(self) -> int:
        """Which coin this binding is about."""
        return self.payload["coin_y"]

    @property
    def holder_y(self) -> int:
        """The current holder's coin-local public key ``pk_CH``."""
        return self.payload["holder_y"]

    @property
    def seq(self) -> int:
        """Monotonic sequence number (fresh issue picks a random start)."""
        return self.payload["seq"]

    @property
    def exp_date(self) -> float:
        """Expiry timestamp; the coin must be renewed before it."""
        return float(self.payload["exp_date"])

    def verify_unsigned(self, coin_key: PublicKey, broker_key: PublicKey) -> bool:
        """Every check except the signature itself; pure predicate.

        Split out so callers holding *many* bindings from the same signer
        (the sync protocol) can do the structural checks per binding and
        hand all the signatures to one randomized batch verification
        (:func:`repro.crypto.dsa.dsa_batch_verify`).
        """
        expected = broker_key if self.via_broker else coin_key
        if self.signed.signer.y != expected.y:
            return False
        payload = self.payload
        return (
            isinstance(payload, dict)
            and payload.get("kind") == "whopay.binding"
            and payload.get("coin_y") == coin_key.y
            and isinstance(payload.get("holder_y"), int)
            and isinstance(payload.get("seq"), int)
        )

    def verify(self, coin_key: PublicKey, broker_key: PublicKey) -> bool:
        """Check the signature against the appropriate signer; pure predicate."""
        return self.verify_unsigned(coin_key, broker_key) and self.signed.verify()

    def encode(self) -> bytes:
        """Canonical bytes."""
        return self.signed.encode()


@dataclass
class HeldCoin:
    """Holder-side wallet entry: the coin, my secret, and my proof."""

    coin: Coin
    holder_keypair: KeyPair
    binding: CoinBinding

    @property
    def coin_y(self) -> int:
        """The held coin's identifying key."""
        return self.coin.coin_y

    @property
    def value(self) -> int:
        """Denomination."""
        return self.coin.value

    def is_expired(self, now: float) -> bool:
        """True once the binding's expiry has passed."""
        return now > self.binding.exp_date

    def needs_renewal(self, now: float, window: float) -> bool:
        """True when inside the renewal window before expiry."""
        return not self.is_expired(now) and (self.binding.exp_date - now) <= window


@dataclass
class OwnedCoinState:
    """Owner-side state for one coin the peer purchased.

    ``relinquishments`` is the audit trail the paper requires: every transfer
    request the owner served, proving the previous holder gave the coin up.
    ``dirty`` marks coins whose authoritative binding may live at the broker
    (a downtime operation happened); lazy synchronization clears it.
    """

    coin: Coin
    coin_keypair: KeyPair
    binding: CoinBinding | None = None  # None until first issued
    relinquishments: list[bytes] = field(default_factory=list)
    dirty: bool = False
    #: Highest sequence number ever signed for this coin, including bindings
    #: from *failed* issue attempts that may already be on the public list;
    #: retries must stay above it or the DHT's rollback protection (rightly)
    #: rejects them.
    seq_floor: int = 0

    @property
    def coin_y(self) -> int:
        """The coin's identifying key."""
        return self.coin.coin_y

    @property
    def issued(self) -> bool:
        """True once the coin has been issued at least once."""
        return self.binding is not None
