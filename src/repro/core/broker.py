"""The broker ``B`` (paper Sections 4.1–4.2).

The broker is the only entity that can create coins and the only one that
redeems them for cash.  Between those endpoints it is involved *only* when a
coin's owner is offline: downtime transfers, downtime renewals, and the
synchronization owners perform after rejoining — which is precisely the load
the paper's evaluation measures (Figures 2, 3, 6, 7, 10, 11).

Security duties implemented here:

* verifying dual-signed holder operations (coin-key signature proves
  holdership, group signature proves legitimate membership and enables
  fairness);
* the two downtime-verification flavours of Section 4.2 — signature check
  when the broker has no state for the coin, bit-by-bit comparison against
  stored state when it does;
* deposit-time double-spending detection: a second deposit of the same coin
  raises :class:`~repro.core.errors.DoubleSpendDetected` carrying both
  deposit envelopes as evidence for the judge;
* monotonic sequence-number enforcement on every binding it records.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Any

from repro.core import protocol
from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.coin import Coin, CoinBinding
from repro.core.errors import (
    CoinExpired,
    DoubleSpendDetected,
    InsufficientFunds,
    NotHolder,
    ProtocolError,
    UnknownCoin,
    VerificationFailed,
)
from repro.core.judge import Judge
from repro.core.sharding import ShardMap
from repro.crypto.dsa import DsaSignature, dsa_batch_verify
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.envelope import DualSignedMessage, seal
from repro.net.node import Node
from repro.net.rpc import RetryPolicy, RpcClient, unwrap_idempotent, wrap_idempotent
from repro.net.transport import NetworkError, Transport
from repro.store import apply as store_apply
from repro.store import records as store_records
from repro.store.groupcommit import GroupCommitter
from repro.store.journal import DurableStore


#: Virtual-time budget for one shard-to-shard prepare/cancel RPC (WP114).
#: Generous — it bounds pathological jitter accumulation across retries,
#: it does not shape the common case.
XSHARD_DEADLINE = 60.0


def handoff_id(op: str, data: bytes) -> str:
    """Deterministic cross-shard handoff id for one client request.

    Derived from the exact request bytes, so a client retry (same bytes)
    re-drives the *same* handoff instead of starting a second one — the
    dedupe key that makes the two-step protocol exactly-once across
    crashes on either side.
    """
    return hashlib.sha256(b"whopay-handoff|" + op.encode() + b"|" + data).hexdigest()[:32]


@dataclass
class Account:
    """A broker-side cash account."""

    identity: PublicKey
    balance: int


@dataclass
class OperationCounts:
    """Per-operation counters matching the paper's load breakdown."""

    purchases: int = 0
    deposits: int = 0
    downtime_transfers: int = 0
    downtime_renewals: int = 0
    syncs: int = 0
    binding_queries: int = 0
    #: Cross-shard prepares served *for other shards* (federation overhead,
    #: not client-facing verified ops — deliberately outside :meth:`total`).
    handoffs: int = 0

    def total(self) -> int:
        """All client-facing broker operations (the paper's load measure)."""
        return (
            self.purchases
            + self.deposits
            + self.downtime_transfers
            + self.downtime_renewals
            + self.syncs
            + self.binding_queries
        )

    def merge(self, other: "OperationCounts") -> None:
        """Accumulate another counter set (federation-wide aggregation)."""
        self.purchases += other.purchases
        self.deposits += other.deposits
        self.downtime_transfers += other.downtime_transfers
        self.downtime_renewals += other.downtime_renewals
        self.syncs += other.syncs
        self.binding_queries += other.binding_queries
        self.handoffs += other.handoffs


class Broker(Node):
    """The broker endpoint.

    Inbound idempotency: the broker serves every peer, so its replay cache
    (the :class:`~repro.net.rpc.ReplayCache` inherited from ``Node``) is
    sized well above the per-peer default — a retried mutating request
    (deposit, downtime transfer, top-up…) whose reply was lost must still
    find its cached result here instead of re-running the handler and
    tripping the double-deposit guard.
    """

    #: Replay-cache bound for the broker (many clients, one endpoint).
    REPLAY_CACHE_CAPACITY = 4096

    def __init__(
        self,
        transport: Transport,
        judge: Judge,
        params: DlogParams,
        clock: Clock,
        address: str = "broker",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        store: DurableStore | None = None,
        keypair: KeyPair | None = None,
    ) -> None:
        super().__init__(transport, address)
        self.params = params
        self.judge = judge
        self.clock = clock
        self.renewal_period = renewal_period
        # Federated shards share one signing key so a coin minted on any
        # shard verifies against the system-wide ``pk_B``.
        self.keypair = keypair if keypair is not None else KeyPair.generate(params)

        self.accounts: dict[str, Account] = {}
        self.valid_coins: dict[int, Coin] = {}
        self.deposited: dict[int, bytes] = {}  # coin_y -> first deposit envelope
        self.downtime_bindings: dict[int, CoinBinding] = {}
        self.owner_coins: dict[str, set[int]] = {}
        self.pending_sync: dict[str, set[int]] = {}  # owner -> coins changed offline
        self.total_opened = 0  # conservation baseline: value ever opened
        #: Source-side cross-shard handoffs begun but not yet committed
        #: (h -> the journaled ``handoff_begin`` mutation).  Durable: a
        #: crash between prepare and commit recovers with the handoff still
        #: pending, and either the client's retry or an explicit
        #: :meth:`complete_pending_handoffs` re-drives it to completion.
        self.pending_handoffs: dict[str, dict[str, Any]] = {}
        #: Destination-side guard: prepare ids already applied.  Durable so
        #: a re-driven prepare stays exactly-once even after the replay
        #: cache evicted the original entry.
        self.handoffs_seen: set[str] = set()
        self.fraud_events: list[DoubleSpendDetected] = []
        self.counts = OperationCounts()
        self._sync_nonces: dict[str, bytes] = {}
        self._gpk_cache: dict[int, Any] = {}
        self.detection = None  # set by WhoPayNetwork when the DHT is enabled
        self.store: DurableStore | None = None
        self._staged: list[dict[str, Any]] = []
        #: Optional group committer (set by the throughput engine).  When
        #: present, :meth:`handle` stages its journal record there instead
        #: of appending per request; the engine owns flushing and must hold
        #: each staged request's reply until the covering fsync.
        self.committer: GroupCommitter | None = None
        #: One-shot ``on_durable`` callback for the *next* staged request
        #: (consumed by :meth:`handle`; set by the engine before each call).
        self.on_durable: Any = None
        #: Whether the most recent :meth:`handle` staged a journal record
        #: (i.e. whether its reply must wait for a covering fsync).
        self.last_request_staged: bool = False
        # SHA-256 digests of raw requests whose *cryptographic* checks a
        # verification pool already performed; consumed on first sight.
        self._preverified: set[bytes] = set()
        #: Federation wiring (set by :meth:`attach_federation`): the ring
        #: that maps coins/accounts to shards, and the retry policy used for
        #: shard-to-shard prepares.  ``None`` means standalone broker — every
        #: cross-shard branch below collapses to the local path.
        self.shard_map: ShardMap | None = None
        self._shard_rpc: RpcClient | None = None
        #: Precomputed-nonce pool for broker-signed bindings (set by the
        #: throughput engine per flush window; see DsaNoncePool).
        self.nonce_pool: Any = None
        if store is not None:
            self.bind_store(store)

        self.on(protocol.PURCHASE, self._handle_purchase)
        self.on(protocol.PURCHASE_BATCH, self._handle_purchase_batch)
        self.on(protocol.DEPOSIT, self._handle_deposit)
        self.on(protocol.DOWNTIME_TRANSFER, self._handle_downtime_transfer)
        self.on(protocol.DOWNTIME_RENEWAL, self._handle_downtime_renewal)
        self.on(protocol.TOP_UP, self._handle_top_up)
        self.on(protocol.SYNC_CHALLENGE, self._handle_sync_challenge)
        self.on(protocol.SYNC, self._handle_sync)
        self.on(protocol.BINDING_QUERY, self._handle_binding_query)
        self.on(protocol.XSHARD_PREPARE, self._handle_xshard_prepare)

    # -- durability -------------------------------------------------------------

    def bind_store(self, store: DurableStore) -> None:
        """Attach a durable store; every mutation from here on is journaled.

        A fresh store gets a ``broker_init`` record (address + signing key)
        as its first entry so recovery can rebuild the keypair.  A non-fresh
        store must be bound by :class:`~repro.store.recovery.RecoveryManager`
        *after* replay — binding it to an unrelated broker would interleave
        histories of two different keypairs.
        """
        was_fresh = store.fresh
        self.store = store
        if was_fresh:
            self._commit_local(
                store_records.broker_init_record(self.address, self.keypair)
            )

    def _stage(self, mut: dict[str, Any]) -> None:
        """Apply one mutation record and stage it for the request's journal entry.

        Handlers never touch the durable fields directly (lint rule WP106);
        they describe the mutation and this applies it through the same
        :mod:`repro.store.apply` function recovery replays it with.
        """
        store_apply.apply_broker(self, mut)
        if self.store is not None:
            self._staged.append(mut)

    def _commit_local(self, *muts: dict[str, Any]) -> None:
        """Apply and immediately journal mutations made outside any RPC."""
        for mut in muts:
            store_apply.apply_broker(self, mut)
        if self.store is not None:
            self.store.append(
                {"kind": "__local__", "idem": None, "reply": None, "muts": list(muts)}
            )

    def handle(self, kind: str, src: str, payload: Any) -> Any:
        """Dispatch, journaling the request's mutations before replying.

        Write-ahead discipline: the staged mutations (plus the reply, keyed
        by the request's idempotency key so recovery can refill the replay
        cache) are fsynced as one journal record *before* the result leaves
        this method.  A crash after the handler ran but before the append
        completes loses only in-memory state the client never saw — its
        retry re-executes against the recovered broker.  Replay-cache hits
        stage nothing, so retries never duplicate journal records.
        """
        if self.store is None:
            return super().handle(kind, src, payload)
        idem, _body = unwrap_idempotent(payload)
        self._staged = []
        try:
            result = super().handle(kind, src, payload)
        except BaseException:
            self._staged = []
            raise
        staged, self._staged = self._staged, []
        on_durable, self.on_durable = self.on_durable, None
        self.last_request_staged = bool(staged)
        if staged:
            record = {
                "kind": kind,
                "idem": idem,
                "reply": result if idem is not None else None,
                "muts": staged,
            }
            if self.committer is not None:
                # Group commit: the record becomes durable at the next
                # flush; the caller must sit on the reply until then (the
                # ``on_durable`` callback is its release signal).
                self.committer.stage(record, on_durable=on_durable)
            else:
                self.store.append(record)
        return result

    # -- accounts ---------------------------------------------------------------

    @property
    def public_key(self) -> PublicKey:
        """The broker's verification key ``pk_B`` (system-wide known)."""
        return self.keypair.public

    def open_account(self, name: str, identity: PublicKey, balance: int) -> None:
        """Open a cash account (bank-relationship setup, out of protocol)."""
        if name in self.accounts:
            raise ValueError(f"account {name!r} already exists")
        self._commit_local(
            {"type": "open_account", "name": name, "identity_y": identity.y, "balance": balance}
        )

    def open_account_from_certificate(self, certificate, ca_key: PublicKey, balance: int) -> None:
        """Open an account from a CA-issued identity certificate.

        The paper's purchase flow has users present "a public key
        certificate"; with this path the broker needs no out-of-band key
        table — trust in the CA key suffices.  Raises on invalid, expired,
        or revoked-by-shape certificates.
        """
        from repro.core.errors import VerificationFailed as _VF

        if not certificate.verify(ca_key, now=self.clock.now()):
            raise _VF("identity certificate invalid or expired")
        self.open_account(
            certificate.subject,
            certificate.subject_key(self.params),
            balance,
        )

    def balance(self, name: str) -> int:
        """Current balance of ``name`` (0 for unknown pseudonymous payouts)."""
        account = self.accounts.get(name)
        return 0 if account is None else account.balance

    def circulating_value(self) -> int:
        """Total value of coins minted and not yet deposited."""
        return sum(
            coin.value
            for coin_y, coin in self.valid_coins.items()
            if coin_y not in self.deposited
        )

    def verify_conservation(self, expected_total: int) -> bool:
        """Audit hook: accounts + circulating value must equal total wealth.

        Value enters the system only through :meth:`open_account`; every
        protocol operation merely moves it between accounts and coins.  A
        False return means a minting/accounting bug — tests and the stateful
        property machine call this after every step.
        """
        accounts = sum(account.balance for account in self.accounts.values())
        return accounts + self.circulating_value() == expected_total

    def export_ledger(self) -> dict[str, Any]:
        """Audit export: counts, balances, and circulation (no secrets)."""
        return {
            "accounts": {name: account.balance for name, account in self.accounts.items()},
            "coins_minted": len(self.valid_coins),
            "coins_deposited": len(self.deposited),
            "circulating_value": self.circulating_value(),
            "downtime_bindings": len(self.downtime_bindings),
            "fraud_events": len(self.fraud_events),
            "operation_counts": {
                "purchases": self.counts.purchases,
                "deposits": self.counts.deposits,
                "downtime_transfers": self.counts.downtime_transfers,
                "downtime_renewals": self.counts.downtime_renewals,
                "syncs": self.counts.syncs,
                "binding_queries": self.counts.binding_queries,
                "handoffs": self.counts.handoffs,
            },
            "pending_handoffs": len(self.pending_handoffs),
        }

    def health(self) -> dict[str, Any]:
        """Liveness surface for supervisors and dashboards (cheap, no secrets)."""
        pending = len(self.pending_handoffs)
        return {
            "ok": bool(self.online) and pending == 0,
            "online": bool(self.online),
            "address": self.address,
            "pending_handoffs": pending,
            "accounts": len(self.accounts),
            "circulating_value": self.circulating_value(),
            "operations": self.counts.total(),
        }

    # -- federation (cross-shard handoffs) ---------------------------------------

    def attach_federation(self, shard_map: ShardMap, policy: RetryPolicy | None = None) -> None:
        """Join a broker federation: this shard owns the keys the ring maps
        to its address and forwards the rest as two-step handoffs.

        ``policy`` governs shard-to-shard prepare RPCs (retries ride the
        same idempotency discipline as client calls).
        """
        self.shard_map = shard_map
        self._shard_rpc = RpcClient(node=self, policy=policy)

    def _account_home(self, name: str) -> str | None:
        """Home shard address for an account, or ``None`` when it is ours
        (or there is no federation)."""
        if self.shard_map is None:
            return None
        home = self.shard_map.shard_for_account(name)
        return None if home == self.address else home

    def _coin_home(self, coin_y: int) -> str | None:
        """Home shard address for a coin key, or ``None`` when it is ours."""
        if self.shard_map is None:
            return None
        home = self.shard_map.shard_for_coin(coin_y)
        return None if home == self.address else home

    def _send_prepares(self, record: dict[str, Any]) -> None:
        """Fan out every prepare of one pending handoff to its destination.

        All prepares are *issued* before the outcome is decided — a batch
        purchase whose coins hash to several sibling shards drives every
        shard's prepare even if an earlier one failed, rather than stopping
        at the first error.  Each prepare payload is pre-wrapped in the
        idempotency envelope keyed by its handoff id, so destination-side
        dedupe works across retries, crashes, and replay-cache eviction.

        Outcome resolution, in precedence order:

        * any destination's *validation* rejection wins — every mint
          prepare in the record is compensated (``unmint`` is an idempotent
          per-coin no-op on shards the prepare never reached) and the
          rejection re-raises, so the caller aborts the handoff;
        * otherwise a transport-level failure (``RetriesExhausted``,
          ``NodeOffline``, timeout) propagates and the handoff stays
          pending for a later re-drive — destination dedupe via
          ``handoffs_seen`` keeps the re-drive exactly-once.
        """
        assert self._shard_rpc is not None
        rejection: ProtocolError | None = None
        transport_failure: Exception | None = None
        for prep in record["prepares"]:
            payload = dict(prep["payload"])
            payload["h"] = prep["h"]
            try:
                self._shard_rpc.call(
                    prep["dest"],
                    protocol.XSHARD_PREPARE,
                    wrap_idempotent(seal(self.keypair, payload).encode(), prep["h"]),
                    deadline=XSHARD_DEADLINE,
                )
            except ProtocolError as exc:
                rejection = rejection or exc
            except NetworkError as exc:
                transport_failure = transport_failure or exc
        if rejection is not None:
            self._cancel_prepares(record)
            raise rejection
        if transport_failure is not None:
            raise transport_failure

    def _cancel_prepares(self, record: dict[str, Any]) -> None:
        """Compensate the record's mint prepares after a validation rejection.

        Only mints need undoing (credits/debits are single-prepare
        handoffs, so a rejection means nothing was applied).  The cancel is
        itself an idempotent prepare (``op: unmint``) keyed off the original
        prepare id — a per-coin no-op on any shard the original prepare
        never reached — so cancelling the *whole* record after a fan-out is
        safe, and so is re-driving a cancel.
        """
        assert self._shard_rpc is not None
        for prep in record["prepares"]:
            if prep["payload"].get("op") != "mint":
                continue
            cancel = {
                "h": prep["h"] + "#cancel",
                "op": "unmint",
                "coins": prep["payload"]["coins"],
            }
            self._shard_rpc.call(
                prep["dest"],
                protocol.XSHARD_PREPARE,
                wrap_idempotent(seal(self.keypair, cancel).encode(), cancel["h"]),
                deadline=XSHARD_DEADLINE,
            )

    def _finish_handoff(self, h: str, staged: bool) -> None:
        """Second step of a handoff: drive prepares, then commit locally.

        ``staged=True`` rides the current request's journal record (commit
        and reply become durable in one fsync); ``staged=False`` is the
        out-of-request re-drive path (:meth:`complete_pending_handoffs`).
        On a destination *validation* rejection the handoff is aborted
        (journaled) and the error propagates to the client.
        """
        record = self.pending_handoffs[h]
        try:
            self._send_prepares(record)
        except ProtocolError:
            # The handler is about to re-raise, which discards staged muts —
            # the abort must be journaled immediately instead.
            self._commit_local({"type": "handoff_abort", "h": h})
            raise
        commit = {"type": "handoff_commit", "h": h}
        if staged:
            self._stage(commit)
        else:
            self._commit_local(commit)

    def complete_pending_handoffs(self) -> int:
        """Re-drive handoffs orphaned by a crash between prepare and commit.

        Deliberately *not* run automatically at recovery: a client whose
        request started the handoff may still be retrying, and its retry
        completes the handoff naturally (same handoff id).  Call this after
        the dust settles — e.g. at the end of a chaos storm — to guarantee
        no value is stuck in flight.  Returns the number completed.
        """
        completed = 0
        for h in sorted(self.pending_handoffs):
            try:
                self._finish_handoff(h, staged=False)
            except ProtocolError:
                continue  # aborted (journaled); value never left the source
            completed += 1
        return completed

    def _begin_handoff(self, h: str, begin: dict[str, Any]) -> None:
        """First step: journal the handoff intent *before* any prepare RPC.

        Idempotent across client retries — a pending ``h`` means the begin
        record is already durable and must not be re-applied.
        """
        if h not in self.pending_handoffs:
            self._commit_local(dict(begin, type="handoff_begin", h=h))

    def _handle_xshard_prepare(self, src: str, payload: Any) -> dict[str, Any]:
        """Destination side of a cross-shard handoff (see docs/FEDERATION.md).

        Validates the op against local state and applies it via a journaled
        ``xshard_apply`` mutation.  The durable ``handoffs_seen`` set makes
        re-driven prepares no-ops even if the replay cache evicted the
        original reply.

        Prepares arrive sealed under the federation signing key: only a
        sibling shard can originate one, so a forged prepare cannot mint,
        credit, or unmint value (lint rule WP113).
        """
        self.counts.handoffs += 1
        if not isinstance(payload, (bytes, bytearray)):
            raise ProtocolError("cross-shard prepare must be a sealed envelope")
        sealed = protocol.decode_signed(bytes(payload), self.params)
        if sealed.signer.y != self.public_key.y or not sealed.verify():
            raise VerificationFailed(
                "cross-shard prepare not signed by the federation key"
            )
        payload = sealed.payload
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("h"), str)
            or not isinstance(payload.get("op"), str)
        ):
            raise ProtocolError("malformed cross-shard prepare")
        h, op = payload["h"], payload["op"]
        if h in self.handoffs_seen:
            return {"ok": True, "replayed": True}
        if op == "mint":
            for coin_bytes in payload.get("coins", ()):
                coin = Coin(cert=protocol.decode_signed(coin_bytes, self.params))
                if coin.cert.signer.y != self.public_key.y or not coin.verify_unsigned():
                    raise VerificationFailed("cross-shard mint carries an invalid certificate")
                if not coin.cert.verify():
                    raise VerificationFailed("cross-shard mint certificate signature invalid")
                if not self.params.is_element(coin.coin_y):
                    raise ProtocolError("cross-shard mint coin key is not a group element")
                existing = self.valid_coins.get(coin.coin_y)
                if existing is not None and existing.encode() != coin_bytes:
                    raise ProtocolError("coin key collision across shards")
        elif op == "credit":
            credited = payload.get("credited")
            if not isinstance(credited, int) or credited <= 0:
                raise ProtocolError("cross-shard credit must be positive")
            if not isinstance(payload.get("payout_to"), str):
                raise ProtocolError("cross-shard credit without payout account")
        elif op == "debit":
            amount = payload.get("amount")
            if not isinstance(amount, int) or amount <= 0:
                raise ProtocolError("cross-shard debit must be positive")
            account = self.accounts.get(payload.get("account"))
            if account is None or account.identity.y != payload.get("auth_identity_y"):
                raise VerificationFailed(
                    "funding authorization not signed by the account identity"
                )
            if account.balance < amount:
                raise InsufficientFunds("funding account cannot cover the top-up")
        elif op == "unmint":
            pass  # compensation: always applicable (per-coin no-op if absent)
        else:
            raise ProtocolError(f"unknown cross-shard op {op!r}")
        self._stage(dict(payload, type="xshard_apply"))
        return {"ok": True}

    # -- verification helpers -----------------------------------------------------

    def mark_preverified(self, digests: set[bytes] | list[bytes]) -> None:
        """Record raw requests whose signatures a verification pool checked.

        ``digests`` are SHA-256 digests of the exact request bytes.  The
        next time each request arrives, the broker skips re-running its
        *cryptographic* checks (group signature, DSA signatures) — every
        structural and state check (circulation, double-spend, holdership
        binding, expiry, balances) still runs in the broker, because only
        the broker holds that state.  Entries are consumed on first use, so
        the set cannot grow without bound and a digest can never vouch for
        more than one admission.
        """
        self._preverified.update(digests)

    def _crypto_preverified(self, data: bytes) -> bool:
        """Consume and report a pool pre-verification for ``data``."""
        if not self._preverified:
            return False
        digest = hashlib.sha256(data).digest()
        if digest in self._preverified:
            self._preverified.discard(digest)
            return True
        return False

    def _gpk_at(self, version: int):
        if version not in self._gpk_cache:
            self._gpk_cache[version] = self.judge.group_public_key_at(version)
        return self._gpk_cache[version]

    def _verify_holder_op(self, data: bytes) -> tuple[protocol.HolderOperation, DualSignedMessage, Coin, CoinBinding]:
        """Common validation for deposit / downtime transfer / downtime renewal.

        Returns the decoded operation, its envelope, the coin, and the
        holder's (verified) proof binding.  Raises a protocol error subclass
        on any failure.

        When the request was pre-verified by a verification pool
        (:meth:`mark_preverified`), the signature checks — the group
        signature here and the DSA batch at the end — are skipped; the pool
        already ran them (unconditionally, including the proof-binding
        signature) on these exact bytes.  All state checks below still run.
        """
        crypto_done = self._crypto_preverified(data)
        try:
            envelope = protocol.decode_dual(data, self.params)
            operation = protocol.HolderOperation.from_payload(envelope.payload)
        except (ValueError, KeyError) as exc:
            raise ProtocolError(f"malformed holder operation: {exc}") from exc

        if envelope.roster_version < self.judge.minimum_accepted_version:
            raise VerificationFailed(
                "group signature predates the latest expulsion (revoked snapshot)"
            )
        gpk = self._gpk_at(envelope.roster_version)
        if not crypto_done and not envelope.verify_group(gpk):
            raise VerificationFailed("holder envelope signatures invalid")
        # The request's DSA signatures (inner holder envelope, coin cert,
        # proof binding) are collected here and checked together with one
        # randomized batch verification at the end, after every structural
        # check has picked its precise error.
        dsa_batch: list[tuple[PublicKey, bytes, DsaSignature]] = [
            (envelope.coin_signer, envelope.inner.payload_bytes, envelope.inner.signature)
        ]

        coin = Coin(cert=protocol.decode_signed(operation.coin_cert, self.params))
        if coin.cert.signer.y != self.public_key.y or not coin.verify_unsigned():
            raise VerificationFailed("coin certificate invalid")
        dsa_batch.append((coin.cert.signer, coin.cert.payload_bytes, coin.cert.signature))
        if coin.coin_y not in self.valid_coins:
            raise UnknownCoin(f"coin {coin.coin_y:#x} is not in circulation")
        if coin.coin_y in self.deposited:
            event = DoubleSpendDetected(
                "coin already deposited",
                evidence={
                    "coin_y": coin.coin_y,
                    "first_deposit": self.deposited[coin.coin_y],
                    "second_request": data,
                },
            )
            self.fraud_events.append(event)
            raise event

        proof = CoinBinding(
            signed=protocol.decode_signed(operation.proof_binding, self.params),
            via_broker=operation.proof_via_broker,
        )
        stored = self.downtime_bindings.get(coin.coin_y)
        if stored is not None and operation.proof_via_broker:
            # Second flavour (Section 4.2): bit-by-bit comparison with state.
            if proof.encode() != stored.encode():
                raise NotHolder("proof binding does not match broker state")
        else:
            coin_key = coin.coin_public_key(self.params)
            if not proof.verify_unsigned(coin_key, self.public_key):
                raise VerificationFailed("proof binding signature invalid")
            dsa_batch.append(
                (proof.signed.signer, proof.signed.payload_bytes, proof.signed.signature)
            )
            if stored is not None and proof.seq < stored.seq:
                raise NotHolder("proof binding is stale (older than broker state)")
        # Holdership: the inner envelope must be signed by the bound holder key.
        if envelope.coin_signer.y != proof.holder_y:
            raise NotHolder("request not signed with the bound holder key")
        if self.clock.now() > proof.exp_date:
            raise CoinExpired(f"coin {coin.coin_y:#x} expired")
        if not crypto_done and not dsa_batch_verify(dsa_batch):
            # Re-check individually for a precise error message.
            if not envelope.inner.verify():
                raise VerificationFailed("holder envelope signatures invalid")
            if not coin.cert.verify():
                raise VerificationFailed("coin certificate invalid")
            raise VerificationFailed("proof binding signature invalid")
        return operation, envelope, coin, proof

    def _record_downtime_binding(self, coin: Coin, binding: CoinBinding) -> None:
        self._stage(
            {
                "type": "downtime_binding",
                "coin_y": coin.coin_y,
                "binding": binding.signed.encode(),
                "owner": coin.owner_address,
            }
        )
        # DHT publication is transport-side, not durable state: recovery
        # replay rebuilds the binding table without re-publishing.
        if self.detection is not None:
            self.detection.publish_broker(self, binding)

    # -- handlers --------------------------------------------------------------

    def _handle_purchase(self, src: str, data: bytes) -> bytes:
        """Purchase (Section 4.2): verify identity, debit, sign the coin."""
        self.counts.purchases += 1
        try:
            signed = protocol.decode_signed(data, self.params)
            request = protocol.PurchaseRequest.from_payload(signed.payload)
        except (ValueError, KeyError) as exc:
            raise ProtocolError(f"malformed purchase: {exc}") from exc
        if not self._crypto_preverified(data) and not signed.verify():
            raise VerificationFailed("purchase signature invalid")
        account = self.accounts.get(request.account)
        if account is None or account.identity.y != signed.signer.y:
            raise VerificationFailed("purchase not signed by the account identity")
        if account.balance < request.value:
            raise InsufficientFunds(f"account {request.account!r} cannot cover {request.value}")
        dest = self._coin_home(request.coin_y)
        if dest is None and request.coin_y in self.valid_coins:
            raise ProtocolError("coin key collision (resubmitted purchase?)")
        if not self.params.is_element(request.coin_y):
            raise ProtocolError("coin key is not a valid group element")
        if request.anonymous:
            # Section 5.2 approach 3: ownerless coin — the certificate binds
            # only the handle and the coin key.  The broker cannot map the
            # coin to its owner afterwards, so no owner index entry is made
            # (which is why lazy synchronization replaces sync for these).
            coin = Coin.build(
                self.keypair,
                coin_y=request.coin_y,
                value=request.value,
                owner_address=None,
                owner_y=None,
                handle=request.handle,
            )
        else:
            coin = Coin.build(
                self.keypair,
                coin_y=request.coin_y,
                value=request.value,
                owner_address=src,
                owner_y=signed.signer.y,
                handle=None,
            )
        if dest is None:
            self._stage(
                {
                    "type": "mint",
                    "account": request.account,
                    "debit": request.value,
                    "coins": [coin.encode()],
                }
            )
            return coin.encode()
        # Cross-shard purchase: this shard (the account's home) debits; the
        # coin's home shard records circulation.  Two-step handoff — begin
        # journaled before the prepare RPC, commit staged with the reply.
        h = handoff_id("purchase", data)
        if h not in self.pending_handoffs:
            self._begin_handoff(
                h,
                {
                    "op": "purchase",
                    "account": request.account,
                    "debit": request.value,
                    "remote_value": request.value,
                    "local_coins": [],
                    "reply_coins": [coin.encode()],
                    "prepares": [
                        {
                            "h": h + "#0",
                            "dest": dest,
                            "payload": {"op": "mint", "coins": [coin.encode()]},
                        }
                    ],
                },
            )
        reply = self.pending_handoffs[h]["reply_coins"][0]
        self._finish_handoff(h, staged=True)
        return reply

    def _handle_purchase_batch(self, src: str, data: bytes) -> list[bytes]:
        """Batch purchase: one signed request, many coins (Section 4.2).

        Atomic: either the whole batch is minted and the account debited for
        the total, or nothing happens.  Counted as one broker operation —
        the amortization is exactly what batching is for.
        """
        self.counts.purchases += 1
        try:
            signed = protocol.decode_signed(data, self.params)
            request = protocol.BatchPurchaseRequest.from_payload(signed.payload)
        except (ValueError, KeyError) as exc:
            raise ProtocolError(f"malformed batch purchase: {exc}") from exc
        if not self._crypto_preverified(data) and not signed.verify():
            raise VerificationFailed("batch purchase signature invalid")
        account = self.accounts.get(request.account)
        if account is None or account.identity.y != signed.signer.y:
            raise VerificationFailed("batch purchase not signed by the account identity")
        total = sum(value for _coin_y, value in request.coins)
        if account.balance < total:
            raise InsufficientFunds(
                f"account {request.account!r} cannot cover batch total {total}"
            )
        for coin_y, _value in request.coins:
            if self._coin_home(coin_y) is None and coin_y in self.valid_coins:
                raise ProtocolError("coin key collision in batch")
            if not self.params.is_element(coin_y):
                raise ProtocolError("batch contains an invalid coin key")
        coins = Coin.build_batch(
            self.keypair,
            [
                {
                    "coin_y": coin_y,
                    "value": value,
                    "owner_address": src,
                    "owner_y": signed.signer.y,
                    "handle": None,
                }
                for coin_y, value in request.coins
            ],
        )
        minted = [coin.encode() for coin in coins]
        local: list[bytes] = []
        remote: dict[str, list[bytes]] = {}
        remote_value = 0
        for coin, raw in zip(coins, minted):
            coin_dest = self._coin_home(coin.coin_y)
            if coin_dest is None:
                local.append(raw)
            else:
                remote.setdefault(coin_dest, []).append(raw)
                remote_value += coin.value
        if not remote:
            self._stage(
                {"type": "mint", "account": request.account, "debit": total, "coins": minted}
            )
            return minted
        # Cross-shard batch: one handoff, one prepare per destination shard.
        # A later destination's rejection triggers unmint compensation on the
        # earlier ones (see _cancel_prepares), keeping the batch atomic.
        h = handoff_id("purchase_batch", data)
        if h not in self.pending_handoffs:
            self._begin_handoff(
                h,
                {
                    "op": "purchase",
                    "account": request.account,
                    "debit": total,
                    "remote_value": remote_value,
                    "local_coins": local,
                    "reply_coins": minted,
                    "prepares": [
                        {
                            "h": f"{h}#{index}",
                            "dest": shard,
                            "payload": {"op": "mint", "coins": shard_coins},
                        }
                        for index, (shard, shard_coins) in enumerate(sorted(remote.items()))
                    ],
                },
            )
        reply = list(self.pending_handoffs[h]["reply_coins"])
        self._finish_handoff(h, staged=True)
        return reply

    def _handle_deposit(self, src: str, data: bytes) -> dict[str, Any]:
        """Deposit: verify holdership + membership, credit, retire the coin."""
        self.counts.deposits += 1
        operation, envelope, coin, proof = self._verify_holder_op(data)
        if operation.op != "deposit":
            raise ProtocolError("deposit handler got a non-deposit operation")
        assert operation.payout_to is not None
        # The broker's registry is authoritative for value: a holder whose
        # certificate predates a top-up still redeems the full amount.
        # Unknown payout names open a pseudonymous bearer account on the fly
        # (the depositor stays anonymous; the account token is its claim).
        value = self.valid_coins[coin.coin_y].value
        dest = self._account_home(operation.payout_to)
        if dest is None:
            self._stage(
                {
                    "type": "deposit",
                    "coin_y": coin.coin_y,
                    "envelope": data,
                    "payout_to": operation.payout_to,
                    "payout_identity_y": envelope.coin_signer.y,
                    "credited": value,
                }
            )
            return {"ok": True, "credited": value}
        # Cross-shard deposit: this shard (the coin's home) retires the coin;
        # the payout account's home shard credits it.
        h = handoff_id("deposit", data)
        self._begin_handoff(
            h,
            {
                "op": "deposit",
                "coin_y": coin.coin_y,
                "envelope": data,
                "credited": value,
                "prepares": [
                    {
                        "h": h + "#0",
                        "dest": dest,
                        "payload": {
                            "op": "credit",
                            "payout_to": operation.payout_to,
                            "payout_identity_y": envelope.coin_signer.y,
                            "credited": value,
                        },
                    }
                ],
            },
        )
        self._finish_handoff(h, staged=True)
        return {"ok": True, "credited": value}

    def _fresh_binding(self, coin: Coin, holder_y: int, previous_seq: int) -> CoinBinding:
        return CoinBinding.build(
            self.keypair,
            coin_y=coin.coin_y,
            holder_y=holder_y,
            seq=previous_seq + 1,
            exp_date=self.clock.now() + self.renewal_period,
            via_broker=True,
            nonce_pool=self.nonce_pool,
        )

    def _handle_downtime_transfer(self, src: str, data: bytes) -> bytes:
        """Downtime transfer (Section 4.2): re-bind the coin, keep state."""
        self.counts.downtime_transfers += 1
        operation, envelope, coin, proof = self._verify_holder_op(data)
        if operation.op != "transfer":
            raise ProtocolError("downtime-transfer handler got a non-transfer op")
        assert operation.new_holder_y is not None
        if not self.params.is_element(operation.new_holder_y):
            raise ProtocolError("new holder key is not a valid group element")
        binding = self._fresh_binding(coin, operation.new_holder_y, proof.seq)
        self._record_downtime_binding(coin, binding)
        return binding.encode()

    def _handle_downtime_renewal(self, src: str, data: bytes) -> bytes:
        """Downtime renewal (Section 4.2): same holder, new seq and expiry."""
        self.counts.downtime_renewals += 1
        operation, envelope, coin, proof = self._verify_holder_op(data)
        if operation.op != "renewal":
            raise ProtocolError("downtime-renewal handler got a non-renewal op")
        binding = self._fresh_binding(coin, proof.holder_y, proof.seq)
        self._record_downtime_binding(coin, binding)
        return binding.encode()

    def _handle_top_up(self, src: str, data: bytes) -> bytes:
        """Increase a coin's value (the Section 2 security property's "only
        the broker can … increase the value of coins").

        The requester proves holdership anonymously (dual-signed envelope)
        and separately authorizes the funding debit with the funding
        account's identity key.  The broker re-mints the certificate at the
        new value; the coin key, owner, and current binding are untouched,
        so the coin keeps circulating seamlessly.
        """
        self.counts.purchases += 1  # value creation: accounted like a purchase
        operation, envelope, coin, proof = self._verify_holder_op(data)
        if operation.op != "top_up":
            raise ProtocolError("top-up handler got a different operation")
        assert operation.delta is not None and operation.funding_auth is not None
        auth = protocol.decode_signed(operation.funding_auth, self.params)
        auth_payload = auth.payload
        if (
            not isinstance(auth_payload, dict)
            or auth_payload.get("kind") != "whopay.debit_auth"
            or auth_payload.get("coin_y") != coin.coin_y
            or auth_payload.get("amount") != operation.delta
        ):
            raise ProtocolError("malformed funding authorization")
        account_name = str(auth_payload.get("account"))
        dest = self._account_home(account_name)
        if dest is None:
            account = self.accounts.get(account_name)
            if account is None or auth.signer.y != account.identity.y or not auth.verify():
                raise VerificationFailed(
                    "funding authorization not signed by the account identity"
                )
            if account.balance < operation.delta:
                raise InsufficientFunds("funding account cannot cover the top-up")
        elif not auth.verify():
            # Identity/balance checks happen at the funding account's home
            # shard (the debit prepare); the signature is checked here.
            raise VerificationFailed("funding authorization signature invalid")
        payload = coin.payload
        new_coin = Coin.build(
            self.keypair,
            coin_y=coin.coin_y,
            value=coin.value + operation.delta,
            owner_address=payload["owner"],
            owner_y=payload["owner_y"],
            handle=payload["handle"],
        )
        if dest is None:
            self._stage(
                {
                    "type": "top_up",
                    "coin_y": coin.coin_y,
                    "coin": new_coin.encode(),
                    "account": account_name,
                    "delta": operation.delta,
                }
            )
            return new_coin.encode()
        # Cross-shard top-up: this shard (the coin's home) re-mints; the
        # funding account's home shard validates identity and debits.
        h = handoff_id("top_up", data)
        if h not in self.pending_handoffs:
            self._begin_handoff(
                h,
                {
                    "op": "top_up",
                    "coin_y": coin.coin_y,
                    "coin": new_coin.encode(),
                    "delta": operation.delta,
                    "prepares": [
                        {
                            "h": h + "#0",
                            "dest": dest,
                            "payload": {
                                "op": "debit",
                                "account": account_name,
                                "amount": operation.delta,
                                "auth_identity_y": auth.signer.y,
                            },
                        }
                    ],
                },
            )
        reply = self.pending_handoffs[h]["coin"]
        self._finish_handoff(h, staged=True)
        return reply

    def _handle_sync_challenge(self, src: str, _payload: Any) -> bytes:
        """First half of sync: hand out a fresh challenge nonce."""
        nonce = secrets.token_bytes(16)
        self._sync_nonces[src] = nonce
        return nonce

    def _handle_sync(self, src: str, data: bytes) -> list[tuple[int, bytes]]:
        """Proactive synchronization (Section 4.2).

        The owner proves its identity by signing the challenge nonce with its
        identity key; the broker replies with every binding it recorded for
        the owner's coins during the downtime.
        """
        self.counts.syncs += 1
        try:
            signed = protocol.decode_signed(data, self.params)
            payload = signed.payload
            nonce = payload["nonce"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed sync: {exc}") from exc
        expected = self._sync_nonces.pop(src, None)
        # Constant-time: the nonce gates a state-revealing reply, so the
        # comparison must not leak the matching prefix length.
        if (
            expected is None
            or not isinstance(nonce, bytes)
            or not hmac.compare_digest(nonce, expected)
        ):
            raise VerificationFailed("sync nonce missing or mismatched")
        if not signed.verify():
            raise VerificationFailed("sync signature invalid")
        owned = self.owner_coins.get(src, set())
        known_identities = {
            self.valid_coins[coin_y].owner_y for coin_y in owned
        }
        if owned and signed.signer.y not in known_identities:
            raise VerificationFailed("sync not signed by the coin owner's identity")
        changed = self.pending_sync.get(src, set())
        response = []
        for coin_y in sorted(changed):
            binding = self.downtime_bindings.get(coin_y)
            if binding is not None:
                response.append((coin_y, binding.encode()))
        if src in self.pending_sync:
            self._stage({"type": "sync_consumed", "owner": src})
        return response

    def _handle_binding_query(self, src: str, coin_y: int) -> bytes | None:
        """Lazy-sync check: the owner asks for broker state on one coin."""
        self.counts.binding_queries += 1
        binding = self.downtime_bindings.get(coin_y)
        return None if binding is None else binding.encode()
