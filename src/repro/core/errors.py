"""Exception taxonomy for the WhoPay protocols.

Every protocol failure maps to a subclass of :class:`ProtocolError` so
callers can distinguish "your request was malformed" from "fraud was just
detected" — the latter carries the evidence needed for adjudication.
"""

from __future__ import annotations

from typing import Any


class ProtocolError(Exception):
    """Base class for all WhoPay protocol failures."""


class VerificationFailed(ProtocolError):
    """A signature, proof, or certificate failed to verify."""


class NotHolder(ProtocolError):
    """The requester could not prove holdership of the coin."""


class NotOwner(ProtocolError):
    """The contacted party is not (or could not prove being) the coin owner."""


class CoinExpired(ProtocolError):
    """The coin's expiration date has passed without renewal."""


class UnknownCoin(ProtocolError):
    """The coin is not in the relevant registry (broker list, owner list…)."""


class InsufficientFunds(ProtocolError):
    """The account cannot cover the requested purchase."""


class FraudDetected(ProtocolError):
    """Fraud was detected; carries the evidence for the judge.

    ``evidence`` is a dict of named artifacts (conflicting bindings, deposit
    requests, group signatures) that :mod:`repro.core.audit` and the judge
    consume to attribute blame.
    """

    def __init__(self, message: str, evidence: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.evidence = evidence or {}


class DoubleSpendDetected(FraudDetected):
    """The same coin was spent (or deposited) twice."""
