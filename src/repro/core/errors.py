"""Exception taxonomy for the WhoPay protocols.

Every protocol failure maps to a subclass of :class:`ProtocolError` so
callers can distinguish "your request was malformed" from "fraud was just
detected" — the latter carries the evidence needed for adjudication.
"""

from __future__ import annotations

from typing import Any

from repro.net.transport import NetworkError


class ProtocolError(Exception):
    """Base class for all WhoPay protocol failures."""


class VerificationFailed(ProtocolError):
    """A signature, proof, or certificate failed to verify."""


class NotHolder(ProtocolError):
    """The requester could not prove holdership of the coin."""


class NotOwner(ProtocolError):
    """The contacted party is not (or could not prove being) the coin owner."""


class CoinExpired(ProtocolError):
    """The coin's expiration date has passed without renewal."""


class UnknownCoin(ProtocolError):
    """The coin is not in the relevant registry (broker list, owner list…)."""


class InsufficientFunds(ProtocolError):
    """The account cannot cover the requested purchase."""


class FraudDetected(ProtocolError):
    """Fraud was detected; carries the evidence for the judge.

    ``evidence`` is a dict of named artifacts (conflicting bindings, deposit
    requests, group signatures) that :mod:`repro.core.audit` and the judge
    consume to attribute blame.
    """

    def __init__(self, message: str, evidence: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.evidence = evidence or {}


class DoubleSpendDetected(FraudDetected):
    """The same coin was spent (or deposited) twice."""


class ServiceUnavailable(ProtocolError, NetworkError):
    """An operation gave up after exhausting its retry/timeout budget.

    Raised by the typed endpoint facades (:mod:`repro.core.clients`) when
    the RPC layer reports :class:`~repro.net.rpc.RetriesExhausted` or
    :class:`~repro.net.rpc.RpcTimeout`.  Subclasses *both* hierarchies on
    purpose: it is a protocol-visible availability failure (``Peer.pay``
    treats it as "fall through to the next payment method") and a network
    failure (callers that already handle :class:`NetworkError` keep
    working unchanged).

    ``attempts`` is how many sends were made; ``last_error`` the final
    transport failure observed.
    """

    def __init__(self, message: str, attempts: int = 0, last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
