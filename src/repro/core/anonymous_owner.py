"""Owner-anonymous coins (paper Section 5.2, approach 3).

The basic design exposes the coin owner's identity inside the coin; this
extension removes it.  Coins become ``C = {h_CU, pk_CU}_skB`` where ``h_CU``
is an i3 handle; payers contact the owner *through the handle*, so "the
payee cannot tell whether the payer is the coin owner or some random peer".

The three broken dependencies the paper identifies, and how this module
restores them:

1. *Reaching the owner for transfers* → the i3 indirection overlay
   (:mod:`repro.indirection.i3`); the owner registers a trigger for each of
   its coin handles.
2. *Broker synchronization* → impossible (the broker cannot map coins to
   owners), replaced by **lazy synchronization**: the owner checks the
   public binding (or broker state) for a coin when it first serves a
   request for it after rejoining.
3. *Fraud attribution* → issuers group-sign their issue messages, so the
   judge can still open a cheating anonymous owner.
"""

from __future__ import annotations

from typing import Any

from repro.core import protocol
from repro.core.coin import CoinBinding, OwnedCoinState
from repro.core.errors import CoinExpired, NotHolder, ProtocolError, UnknownCoin, VerificationFailed
from repro.core.peer import Peer
from repro.crypto.keys import KeyPair
from repro.crypto.primitives import int_to_bytes
from repro.indirection.i3 import I3Overlay
from repro.net.transport import NetworkError, NodeOffline


class AnonymousOwnerPeer(Peer):
    """A peer that can own and spend ownerless (handle-addressed) coins.

    Also fully interoperates with basic coins; only coins purchased through
    :meth:`purchase_anonymous` use the extension paths.  Instances force
    lazy synchronization — there is nothing the broker could proactively
    sync for coins it cannot attribute.
    """

    def __init__(self, *args: Any, i3: I3Overlay, **kwargs: Any) -> None:
        kwargs["sync_mode"] = "lazy"
        super().__init__(*args, **kwargs)
        self.i3 = i3
        self._handle_tokens: dict[int, bytes] = {}  # coin_y -> claim token

    # -- owner side --------------------------------------------------------------

    def purchase_anonymous(self, value: int = 1, account: str | None = None) -> OwnedCoinState:
        """Buy an ownerless coin and claim its i3 handle."""
        coin_keypair = KeyPair.generate(self.params)
        handle, token = I3Overlay.mint_handle(int_to_bytes(coin_keypair.x))
        request = protocol.PurchaseRequest(
            coin_y=coin_keypair.public.y,
            value=value,
            account=account if account is not None else self.address,
            anonymous=True,
            handle=handle,
        )
        from repro.messages.envelope import seal

        signed = seal(self.identity, request.to_payload())
        coin_bytes = self.broker_client.purchase(signed.encode())
        from repro.core.coin import Coin

        coin = Coin(cert=protocol.decode_signed(coin_bytes, self.params))
        if not coin.verify(self.broker_key) or coin.handle != handle:
            raise VerificationFailed("broker returned an invalid anonymous coin")
        self.i3.insert_trigger(handle, token, self.address, src=self.address)
        state = OwnedCoinState(coin=coin, coin_keypair=coin_keypair)
        self.owned[coin.coin_y] = state
        self._wal_owned(state)
        self._handle_tokens[coin.coin_y] = token
        self.counts.purchases += 1
        return state

    def depart(self) -> None:
        """Go offline; i3 triggers stay registered but dead-end until rejoin."""
        super().depart()

    def release_handle(self, coin_y: int) -> None:
        """Remove the i3 trigger for a coin (after it is fully retired)."""
        state = self.owned.get(coin_y)
        token = self._handle_tokens.get(coin_y)
        if state is None or token is None or state.coin.handle is None:
            raise UnknownCoin(f"no handle state for coin {coin_y:#x}")
        self.i3.remove_trigger(state.coin.handle, token, src=self.address)

    # -- payer side ----------------------------------------------------------------

    def transfer(self, payee: str, coin_y: int | None = None) -> CoinBinding:
        """Transfer a held coin; ownerless coins route via the i3 handle."""
        held = self._pick_held_any(coin_y)
        if not held.coin.is_ownerless:
            return super().transfer(payee, held.coin_y)
        if held.is_expired(self.clock.now()):
            raise CoinExpired(f"coin {held.coin_y:#x} expired")
        offer = self.peer_client.transfer_offer(payee, held.coin.encode())
        envelope = self._holder_envelope(
            held, "transfer", new_holder_y=offer["holder_y"], nonce=offer["nonce"]
        )
        self._expected_rebinds.add(held.coin_y)
        try:
            response = self.i3.send(
                self.address,
                held.coin.handle,
                protocol.TRANSFER_REQUEST,
                {
                    "envelope": protocol.encode_dual(envelope),
                    "payee": payee,
                    "nonce": offer["nonce"],
                },
            )
        except (NodeOffline, NetworkError) as exc:
            raise NodeOffline(f"owner unreachable via handle: {exc}") from exc
        binding = CoinBinding(
            signed=protocol.decode_signed(response["binding"], self.params),
            via_broker=False,
        )
        if not binding.verify(held.coin.coin_public_key(self.params), self.broker_key):
            raise VerificationFailed("owner returned an invalid transfer binding")
        if binding.holder_y != offer["holder_y"] or binding.seq <= held.binding.seq:
            raise VerificationFailed("transfer binding does not match the request")
        if self.detection is not None:
            self.detection.unsubscribe(self, held.coin_y)
        del self.wallet[held.coin_y]
        self._wal_del(held.coin_y)
        self._expected_rebinds.discard(held.coin_y)
        self.counts.transfers_sent += 1
        return binding

    def renew(self, coin_y: int) -> CoinBinding:
        """Renew; ownerless coins try the handle first, broker on failure."""
        held = self.wallet.get(coin_y)
        if held is None:
            raise NotHolder(f"not holding coin {coin_y:#x}")
        if not held.coin.is_ownerless:
            return super().renew(coin_y)
        envelope = self._holder_envelope(held, "renewal")
        try:
            response = self.i3.send(
                self.address,
                held.coin.handle,
                protocol.RENEW_REQUEST,
                protocol.encode_dual(envelope),
            )
            binding = CoinBinding(
                signed=protocol.decode_signed(response, self.params), via_broker=False
            )
            self.counts.renewals_sent += 1
        except (NodeOffline, NetworkError):
            response = self.broker_client.downtime_renewal(protocol.encode_dual(envelope))
            binding = CoinBinding(
                signed=protocol.decode_signed(response, self.params), via_broker=True
            )
            self.counts.downtime_renewals += 1
        if not binding.verify(held.coin.coin_public_key(self.params), self.broker_key):
            raise VerificationFailed("renewal returned an invalid binding")
        held.binding = binding
        self._wal_held(held)
        return binding

    def _pick_held_any(self, coin_y: int | None):
        if coin_y is not None:
            held = self.wallet.get(coin_y)
            if held is None:
                raise NotHolder(f"not holding coin {coin_y:#x}")
            return held
        if not self.wallet:
            raise UnknownCoin("wallet is empty")
        return next(iter(self.wallet.values()))
