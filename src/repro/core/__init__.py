"""WhoPay core: the paper's primary contribution (Sections 4 and 5).

The package implements the full protocol suite over the in-memory network
substrate with real cryptography:

* :mod:`repro.core.coin` — coins as public keys, holder bindings, wallets.
* :mod:`repro.core.judge` — registration and identity opening (fairness).
* :mod:`repro.core.broker` — purchase, deposit, downtime transfer/renewal,
  synchronization, deposit-time double-spend detection.
* :mod:`repro.core.peer` — the user agent: issue, transfer-via-owner,
  renewal, holder wallets, owner binding lists, lazy-sync checks.
* :mod:`repro.core.detection` — real-time double-spending detection over
  the DHT (Section 5.1).
* :mod:`repro.core.coinshop` — coin-shop issuer anonymity (Section 5.2).
* :mod:`repro.core.anonymous_owner` — ownerless coins with i3 handles
  (Section 5.2, approach 3).
* :mod:`repro.core.audit` — audit trails and culprit attribution.
* :mod:`repro.core.network` — one-call assembly of a complete WhoPay
  deployment (transport + judge + broker + peers [+ DHT]).
"""

from repro.core.broker import Broker
from repro.core.clock import Clock
from repro.core.coin import Coin, CoinBinding, HeldCoin, OwnedCoinState
from repro.core.errors import (
    CoinExpired,
    DoubleSpendDetected,
    FraudDetected,
    InsufficientFunds,
    NotHolder,
    NotOwner,
    ProtocolError,
    VerificationFailed,
)
from repro.core.judge import Judge
from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.core.peer import Peer

__all__ = [
    "Clock",
    "Coin",
    "CoinBinding",
    "HeldCoin",
    "OwnedCoinState",
    "Judge",
    "Broker",
    "Peer",
    "WhoPayNetwork",
    "BrokerTopology",
    "PeerConfig",
    "ProtocolError",
    "VerificationFailed",
    "NotHolder",
    "NotOwner",
    "CoinExpired",
    "DoubleSpendDetected",
    "FraudDetected",
    "InsufficientFunds",
]
