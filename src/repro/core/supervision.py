"""Pluggable broker-shard supervision: crash hooks vs. detector-driven failover.

:meth:`~repro.core.network.WhoPayNetwork.supervise_broker` historically
registered transport crash handlers — the transport restarts a dying shard
synchronously *before* the in-flight sender sees ``ReplyLost``, a trick no
real deployment has.  That behavior is preserved as
:class:`CrashHookSupervision`, now just one :class:`SupervisionPolicy`
among several.

:class:`LeaseGatedSupervision` is the realistic one.  It owns a
:class:`HeartbeatMonitor` node on the ordinary transport; every clock
advance it

1. emits the heartbeats that came due, in virtual-time order, from each
   live shard via the shard's own RPC client (a dead shard simply emits
   nothing — that *is* the failure signal);
2. merges the monitor's gossiped last-seen table back into each emitter's
   local view;
3. checks the phi-accrual detector, and only when a shard is DEAD **and**
   its lease has lapsed restarts it from its journal
   (:meth:`~repro.core.network.WhoPayNetwork.restart_shard`) and re-drives
   any orphaned cross-shard handoffs
   (:meth:`~repro.core.brokerapi.BrokerAPI.complete_pending_handoffs`).

Everything runs on the virtual clock: detection latency is measured in
virtual seconds and is bit-identical per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.net.liveness import (
    DEAD,
    HEARTBEAT,
    LeaseTable,
    LivenessConfig,
    PhiAccrualDetector,
)
from repro.net.node import Node
from repro.net.transport import NetworkError
from repro.store.crashpoints import SimulatedCrash

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import WhoPayNetwork

#: Address the lease-gated supervisor's monitor node registers under.
SUPERVISOR_ADDRESS = "liveness-supervisor"


class SupervisionPolicy:
    """How a :class:`~repro.core.network.WhoPayNetwork` keeps shards alive.

    ``attach(net)`` wires the policy into the network;
    ``tick(now)`` runs once per :meth:`WhoPayNetwork.advance`;
    ``detach()`` unwires it.  Policies must be idempotent under repeated
    ``detach``.
    """

    def attach(self, net: "WhoPayNetwork") -> None:
        raise NotImplementedError

    def tick(self, now: float) -> None:  # pragma: no cover - trivial default
        """Periodic work (heartbeats, failure checks); default none."""

    def detach(self) -> None:  # pragma: no cover - trivial default
        """Unwire from the network; default none."""


class CrashHookSupervision(SupervisionPolicy):
    """The legacy transport-magic policy: restart inside the crash handler.

    The transport runs the restart *before* the in-flight sender sees
    ``ReplyLost``, so the sender's retry — same idempotency key — lands on
    the recovered shard and is deduplicated against the journal-refilled
    replay cache.  Useful as a deterministic upper bound on availability;
    unrealistic as a deployment story.
    """

    def __init__(self) -> None:
        self._net: "WhoPayNetwork | None" = None
        self._addresses: list[str] = []

    def attach(self, net: "WhoPayNetwork") -> None:
        self._net = net
        self._addresses = []
        for index in range(len(net.shards)):

            def on_crash(_crash: SimulatedCrash, index: int = index) -> None:
                net.restart_shard(index)

            address = net.shards[index].address
            net.transport.set_crash_handler(address, on_crash)
            self._addresses.append(address)

    def detach(self) -> None:
        if self._net is None:
            return
        for address in self._addresses:
            self._net.transport.set_crash_handler(address, None)
        self._addresses = []
        self._net = None


class HeartbeatMonitor(Node):
    """The supervisor-side endpoint heartbeats land on.

    An ordinary :class:`~repro.net.node.Node` — heartbeats ride the same
    transport, fault plans and all.  Each beat updates the detector and
    renews the emitter's lease; the reply carries the monitor's last-seen
    snapshot so emitters gossip a shared liveness view.
    """

    def __init__(
        self,
        transport: Any,
        address: str,
        detector: PhiAccrualDetector,
        leases: LeaseTable,
    ) -> None:
        super().__init__(transport, address)
        self.detector = detector
        self.leases = leases
        self.beats_received = 0
        self.on(HEARTBEAT, self._handle_heartbeat)

    def _handle_heartbeat(self, src: str, payload: Any) -> dict[str, Any]:
        if not isinstance(payload, dict) or "now" not in payload:
            raise NetworkError(f"malformed heartbeat from {src}")
        sent_at = float(payload["now"])
        self.beats_received += 1
        self.detector.observe(src, sent_at)
        self.leases.renew(src, sent_at)
        return {"ok": True, "last_seen": self.detector.snapshot()}


@dataclass(frozen=True)
class DetectionEvent:
    """One detector-driven failover, for latency assertions and telemetry."""

    address: str
    last_seen: float
    detected_at: float
    phi: float
    redriven_handoffs: int


class LeaseGatedSupervision(SupervisionPolicy):
    """Detector-driven failover: heartbeat silence → DEAD → lease lapse → restart.

    No transport crash handlers are involved: a killed shard fails its
    callers with ``NodeOffline`` (protocol-visible, as churn always is)
    until the detector notices the silence, the lease lapses, and the
    supervisor restarts the shard from its journal and re-drives orphaned
    handoffs.  The two-step gate means a slow-but-alive shard — beats
    delayed or dropped, but still renewing its lease now and then — is
    never double-driven.
    """

    def __init__(self, config: LivenessConfig | None = None) -> None:
        self.config = config or LivenessConfig()
        self.detector = PhiAccrualDetector(self.config)
        self.leases = LeaseTable(self.config.lease_duration)
        self.monitor: HeartbeatMonitor | None = None
        self.events: list[DetectionEvent] = []
        #: Per-shard gossip views: the last-seen table each emitter has
        #: merged from monitor replies.
        self.gossip_views: dict[str, PhiAccrualDetector] = {}
        self.beats_sent = 0
        self.beats_missed = 0
        self._net: "WhoPayNetwork | None" = None
        self._seq: dict[str, int] = {}
        self._next_beat: dict[str, float] = {}
        self._index: dict[str, int] = {}

    # -- wiring ----------------------------------------------------------------

    def attach(self, net: "WhoPayNetwork") -> None:
        self._net = net
        self.monitor = HeartbeatMonitor(
            net.transport, SUPERVISOR_ADDRESS, self.detector, self.leases
        )
        now = net.clock.now()
        for index, shard in enumerate(net.shards):
            address = shard.address
            self._index[address] = index
            self._seq[address] = 0
            self._next_beat[address] = now + self.config.heartbeat_interval
            self.detector.expect(address, now)
            self.leases.renew(address, now)
            self.gossip_views[address] = PhiAccrualDetector(self.config)

    def detach(self) -> None:
        if self._net is not None and self.monitor is not None:
            self._net.transport.unregister(self.monitor.address)
        self.monitor = None
        self._net = None

    # -- per-advance work -------------------------------------------------------

    def tick(self, now: float) -> None:
        """Run one supervision round at virtual time ``now``."""
        self._emit_due(now)
        self._failover(now)

    def _emit_due(self, now: float) -> None:
        """Emit every heartbeat that came due, in virtual-time order.

        A coarse clock advance may cover several beat periods; beats are
        replayed at their scheduled times (ties broken by address) so the
        detector sees the same arrival sequence regardless of how the
        caller quantizes ``advance``.
        """
        assert self._net is not None and self.monitor is not None
        due: list[tuple[float, str]] = []
        for address in sorted(self._next_beat):
            when = self._next_beat[address]
            while when <= now:
                due.append((when, address))
                when += self.config.heartbeat_interval
            self._next_beat[address] = when
        for when, address in sorted(due):
            self._emit_one(address, when)

    def _emit_one(self, address: str, when: float) -> None:
        assert self._net is not None and self.monitor is not None
        shard = self._net.shards[self._index[address]]
        if not shard.online or not self._net.transport.is_online(address):
            # A dead shard emits nothing — silence is the failure signal.
            self.beats_missed += 1
            return
        self._seq[address] += 1
        try:
            reply = shard.rpc.call(
                self.monitor.address,
                HEARTBEAT,
                {"seq": self._seq[address], "now": when},
                deadline=self.config.heartbeat_interval,
            )
        except NetworkError:
            # Dropped/jittered-away beat: exactly the false-positive
            # pressure the detector is tuned against.
            self.beats_missed += 1
            return
        self.beats_sent += 1
        table = reply.get("last_seen", {}) if isinstance(reply, dict) else {}
        self.gossip_views[address].merge(table)

    def _failover(self, now: float) -> None:
        """Restart every shard that is detector-DEAD with a lapsed lease."""
        assert self._net is not None
        for address in self.detector.monitored():
            if address not in self._index:
                continue
            if self.detector.state(address, now) != DEAD:
                continue
            if not self.leases.expired(address, now):
                continue  # lease-gated: dead verdict alone is not enough
            index = self._index[address]
            last_seen = self.detector.last_seen(address) or 0.0
            phi = self.detector.phi(address, now)
            self._net.restart_shard(index)
            # Re-drive handoffs federation-wide: the restarted shard's own
            # journaled orphans *and* siblings' handoffs stranded mid-flight
            # toward it while it was dark.
            redriven = self._net.broker.complete_pending_handoffs()
            self.detector.reset(address, now)
            self.leases.renew(address, now)
            self._next_beat[address] = now + self.config.heartbeat_interval
            self.events.append(
                DetectionEvent(
                    address=address,
                    last_seen=last_seen,
                    detected_at=now,
                    phi=phi,
                    redriven_handoffs=redriven,
                )
            )

    # -- introspection ----------------------------------------------------------

    def last_seen_table(self) -> dict[str, float]:
        """The supervisor's authoritative last-seen table."""
        return self.detector.snapshot()

    def detection_latencies(self) -> list[float]:
        """Silence-to-restart latency of every failover, in event order."""
        return [event.detected_at - event.last_seen for event in self.events]


__all__ = [
    "CrashHookSupervision",
    "DetectionEvent",
    "HeartbeatMonitor",
    "LeaseGatedSupervision",
    "SUPERVISOR_ADDRESS",
    "SupervisionPolicy",
]
