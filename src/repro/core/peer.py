"""The WhoPay peer: wallet holder, coin owner, payer and payee (Section 4).

One :class:`Peer` plays every user role in the paper:

* **buyer** — :meth:`purchase` coins from the broker;
* **payer** — :meth:`issue` coins it owns, :meth:`transfer` coins it holds
  (via the owner when online, via the broker otherwise), with :meth:`pay`
  choosing the method by a preference policy;
* **payee** — handles issue/transfer offers, minting a fresh per-coin key
  pair for each payment and verifying the whole evidence chain before
  accepting;
* **owner** — serves transfer and renewal requests for the coins it
  purchased, maintains the binding list and relinquishment audit trail, and
  synchronizes with the broker after downtime (proactively or lazily,
  Section 5.2);
* **holder** — renews held coins before expiry and deposits them for cash.

Anonymity mechanics exactly as specified: holder-side messages are signed
with the per-coin holder key plus the group key (never the identity key),
so neither the owner nor the broker learns who holds, pays, or deposits.
"""

from __future__ import annotations

import secrets
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.core import protocol
from repro.core.clients import BrokerClient, PeerClient
from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.coin import Coin, CoinBinding, HeldCoin, OwnedCoinState
from repro.core.errors import (
    CoinExpired,
    NotHolder,
    NotOwner,
    ProtocolError,
    ServiceUnavailable,
    UnknownCoin,
    VerificationFailed,
)
from repro.core.judge import Judge
from repro.crypto.dsa import DsaSignature, dsa_batch_verify
from repro.crypto.group_signature import GroupMemberKey
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.crypto.schnorr import SchnorrProof, schnorr_prove, schnorr_verify
from repro.anonymity.pseudonym import funding_voucher
from repro.messages.envelope import DualSignedMessage, group_seal, seal
from repro.net.liveness import BreakerBoard, BreakerConfig
from repro.net.node import Node
from repro.net.rpc import CircuitOpen, RetryPolicy
from repro.net.transport import NetworkError, NodeOffline, Transport
from repro.store import records as wallet_records
from repro.store.journal import DurableStore

#: How long before expiry a holder starts renewing (one quarter of the period).
RENEWAL_WINDOW_FRACTION = 0.25


@dataclass
class PeerCounts:
    """Per-operation counters (the peer-side load of Figures 4/5)."""

    purchases: int = 0
    issues: int = 0
    transfers_sent: int = 0
    transfers_handled: int = 0
    renewals_sent: int = 0
    renewals_handled: int = 0
    deposits: int = 0
    downtime_transfers: int = 0
    downtime_renewals: int = 0
    syncs: int = 0
    checks: int = 0
    lazy_syncs: int = 0
    payments_received: int = 0


@dataclass
class Alarm:
    """A real-time double-spend alarm raised by binding monitoring."""

    coin_y: int
    expected_holder_y: int
    observed_holder_y: int
    observed_seq: int
    at: float


@dataclass
class _PendingOffer:
    """Payee-side state between offer and completion."""

    coin_y: int
    holder_keypair: KeyPair
    payer: str


class Peer(Node):
    """A WhoPay user agent attached to the shared transport."""

    def __init__(
        self,
        transport: Transport,
        address: str,
        params: DlogParams,
        clock: Clock,
        judge: Judge,
        member_key: GroupMemberKey,
        broker_address: str,
        broker_key: PublicKey,
        sync_mode: str = "proactive",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy: RetryPolicy | None = None,
        store: DurableStore | None = None,
        shard_map: Any = None,
        breaker_config: BreakerConfig | None = None,
    ) -> None:
        if sync_mode not in ("proactive", "lazy"):
            raise ValueError("sync_mode must be 'proactive' or 'lazy'")
        super().__init__(transport, address)
        self.params = params
        self.clock = clock
        self.judge = judge
        self.identity = KeyPair.generate(params)
        self.member_key = member_key
        self.broker_address = broker_address
        self.broker_key = broker_key
        self.sync_mode = sync_mode
        self.renewal_period = renewal_period
        # All outbound protocol traffic goes through the typed facades; the
        # retry policy (default: single attempt) is threaded here once.
        # ``shard_map`` makes the broker facade federation-aware — each call
        # routes straight to the shard owning the coin/account it touches.
        self.retry_policy = retry_policy
        # Broker traffic (only) sits behind per-destination circuit breakers
        # when configured: a dead shard trips its breaker, later calls
        # short-circuit with ``CircuitOpen`` instead of burning retry budget,
        # and ``pay`` queues the payment until the breaker half-opens and the
        # shard proves itself recovered.  Peer-to-peer traffic stays bare —
        # churned peers going offline is ordinary protocol life, not failure.
        self.breakers = (
            BreakerBoard(breaker_config, seed=zlib.crc32(address.encode()))
            if breaker_config is not None
            else None
        )
        self.broker_client = BrokerClient(
            self, broker_address, policy=retry_policy, shard_map=shard_map,
            breakers=self.breakers,
        )
        self.peer_client = PeerClient(self, policy=retry_policy)
        #: Payments deferred because every route to the broker was degraded
        #: (tripped breaker / offline shard / retries exhausted); drained by
        #: :meth:`drain_payment_queue` once the destination recovers.
        self.payment_queue: list[tuple[str, tuple[str, ...]]] = []

        self.wallet: dict[int, HeldCoin] = {}
        self.owned: dict[int, OwnedCoinState] = {}
        self.counts = PeerCounts()
        self.alarms: list[Alarm] = []
        self.detection = None  # set by WhoPayNetwork when the DHT is enabled
        self._pending: dict[bytes, _PendingOffer] = {}
        self._expected_rebinds: set[int] = set()  # coins I am moving myself
        self._gpk_cache: dict[int, Any] = {}
        self.store: DurableStore | None = None
        if store is not None:
            self.bind_store(store)

        self.on(protocol.ISSUE_OFFER, self._handle_payment_offer)
        self.on(protocol.ISSUE_COMPLETE, self._handle_payment_complete)
        self.on(protocol.TRANSFER_OFFER, self._handle_payment_offer)
        self.on(protocol.TRANSFER_COMPLETE, self._handle_payment_complete)
        self.on(protocol.TRANSFER_REQUEST, self._handle_transfer_request)
        self.on(protocol.RENEW_REQUEST, self._handle_renew_request)
        self.on(protocol.BINDING_UPDATE, self._handle_binding_update)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def bind_store(self, store: DurableStore) -> None:
        """Attach a durable store; wallet mutations are journaled from here on.

        A fresh store gets a ``peer_init`` record (identity and group member
        secrets — coins are bearer key material, so losing these loses
        money).  A non-fresh store belongs to
        :class:`~repro.store.recovery.RecoveryManager`, which binds it after
        replay.
        """
        was_fresh = store.fresh
        self.store = store
        if was_fresh:
            self._wal(
                wallet_records.peer_init_record(
                    self.address, self.identity, self.member_key
                )
            )

    def _wal(self, *muts: dict[str, Any]) -> None:
        """Durably journal wallet mutations (no-op without a store)."""
        if self.store is not None:
            self.store.append(
                {"kind": "__wallet__", "idem": None, "reply": None, "muts": list(muts)}
            )

    def _wal_held(self, held: HeldCoin) -> None:
        if self.store is not None:
            self._wal({"type": "wallet_put", "entry": wallet_records.held_entry(held)})

    def _wal_owned(self, state: OwnedCoinState) -> None:
        if self.store is not None:
            self._wal({"type": "owned_put", "entry": wallet_records.owned_entry(state)})

    def _wal_del(self, coin_y: int) -> None:
        self._wal({"type": "wallet_del", "coin_y": coin_y})

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _gpk(self, version: int | None = None):
        if version is None:
            gpk = self.judge.group_public_key()
            self._gpk_cache[len(gpk.roster)] = gpk
            return gpk
        if version not in self._gpk_cache:
            self._gpk_cache[version] = self.judge.group_public_key_at(version)
        return self._gpk_cache[version]

    def _verify_dual(self, envelope: DualSignedMessage) -> bool:
        # Revocation floor: refuse signatures minted against a roster
        # snapshot that predates the latest expulsion.
        if envelope.roster_version < self.judge.minimum_accepted_version:
            return False
        return envelope.verify(self._gpk(envelope.roster_version))

    def _owner_proof_context(self, nonce: bytes, binding: CoinBinding) -> bytes:
        return b"whopay-owner-proof|" + nonce + b"|" + binding.encode()

    def balance_held(self) -> int:
        """Total value of coins currently in the wallet."""
        return sum(held.value for held in self.wallet.values())

    def spendable_owned(self) -> list[int]:
        """Coins this peer owns that have never been issued (issuable)."""
        return [coin_y for coin_y, state in self.owned.items() if not state.issued]

    def wallet_summary(self) -> list[dict[str, Any]]:
        """Inspection view of every held coin (no secrets included)."""
        now = self.clock.now()
        rows = []
        for held in self.wallet.values():
            owner = held.coin.owner_address
            rows.append(
                {
                    "coin": held.coin_y,
                    "value": held.value,
                    "owner": owner if owner is not None else "<anonymous>",
                    "owner_online": bool(owner and self.transport.is_online(owner)),
                    "seq": held.binding.seq,
                    "via_broker": held.binding.via_broker,
                    "expires_in": held.binding.exp_date - now,
                    "expired": held.is_expired(now),
                }
            )
        return rows

    def owned_summary(self) -> list[dict[str, Any]]:
        """Inspection view of every owned coin (no secrets included)."""
        rows = []
        for state in self.owned.values():
            rows.append(
                {
                    "coin": state.coin_y,
                    "value": state.coin.value,
                    "issued": state.issued,
                    "seq": state.binding.seq if state.binding else None,
                    "relinquishments": len(state.relinquishments),
                    "needs_check": state.dirty,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # lifecycle / churn
    # ------------------------------------------------------------------

    def depart(self) -> None:
        """Go offline (coins owned by this peer become 'offline coins')."""
        self.go_offline()

    def rejoin(self) -> None:
        """Come back online; synchronize state per the configured mode.

        Proactive: one sync exchange with the broker immediately (the paper's
        base protocol).  Lazy (Section 5.2): mark every owned coin as
        possibly-stale; the first transfer/renewal request for a coin then
        triggers a *check*.
        """
        self.go_online()
        if self.sync_mode == "proactive":
            self.sync_with_broker()
        else:
            for state in self.owned.values():
                state.dirty = True
            self._wal({"type": "owned_dirty_all"})

    def sync_with_broker(self) -> int:
        """Proactive synchronization; returns how many bindings were updated.

        Every returned binding is signed by the same key (the broker's), so
        the signatures are checked with one randomized batch verification;
        only a failing batch falls back to per-binding checks to surface the
        precise offender.
        """
        # Federation: an owner's coins live on the shards the ring assigns
        # them to, so sync only the shards that actually hold some of ours
        # (one exchange per such shard; standalone brokers collapse to one).
        shard_map = self.broker_client.shard_map
        if shard_map is None or not self.owned:
            shards: list[str] = [self.broker_address]
        else:
            shards = sorted({shard_map.shard_for_coin(coin_y) for coin_y in self.owned})
        accepted: list[tuple[OwnedCoinState, CoinBinding]] = []
        for shard in shards:
            nonce = self.broker_client.sync_challenge(shard=shard)
            signed = seal(self.identity, {"kind": "whopay.sync", "nonce": nonce})
            updates = self.broker_client.sync(signed.encode(), shard=shard)
            for coin_y, binding_bytes in updates:
                state = self.owned.get(coin_y)
                if state is None:
                    continue
                binding = CoinBinding(
                    signed=protocol.decode_signed(binding_bytes, self.params), via_broker=True
                )
                if not binding.verify_unsigned(state.coin_keypair.public, self.broker_key):
                    raise VerificationFailed("broker sync returned an invalid binding")
                accepted.append((state, binding))
        self.counts.syncs += 1
        batch = [
            (binding.signed.signer, binding.signed.payload_bytes, binding.signed.signature)
            for _, binding in accepted
        ]
        if not dsa_batch_verify(batch):
            for _, binding in accepted:
                if not binding.signed.verify():
                    raise VerificationFailed("broker sync returned an invalid binding")
            raise VerificationFailed("broker sync batch verification failed")
        applied = 0
        for state, binding in accepted:
            if state.binding is None or binding.seq > state.binding.seq:
                state.binding = binding
                applied += 1
                self._wal_owned(state)
            state.dirty = False
        for state in self.owned.values():
            state.dirty = False
        self._wal({"type": "owned_clean_all"})
        return applied

    def _check_coin_state(self, state: OwnedCoinState) -> None:
        """Lazy-sync *check*: refresh one coin's binding before serving it.

        Consults the public binding list when real-time detection is running
        (the Section 5.2 design), otherwise asks the broker directly.  If the
        authoritative state is newer than ours, adopt it — that adoption is
        what the paper calls a lazy synchronization.
        """
        self.counts.checks += 1
        latest = self._fetch_verified_binding(state)
        if latest is not None and (state.binding is None or latest.seq > state.binding.seq):
            state.binding = latest
            self.counts.lazy_syncs += 1
        state.dirty = False
        self._wal_owned(state)

    def _fetch_verified_binding(self, state: OwnedCoinState) -> CoinBinding | None:
        """Fetch the authoritative binding, verified at the trust boundary.

        Every decode is checked before the binding escapes this helper, so
        callers only ever see ``None`` or a broker-signed binding.
        """
        if self.detection is not None:
            latest = self.detection.fetch_binding(self.address, state.coin_y)
            if latest is not None and not latest.verify(
                state.coin_keypair.public, self.broker_key
            ):
                raise VerificationFailed("public binding fails verification")
            return latest
        raw = self.broker_client.binding_query(state.coin_y)
        if raw is None:
            return None
        latest = CoinBinding(
            signed=protocol.decode_signed(raw, self.params), via_broker=True
        )
        if not latest.verify(state.coin_keypair.public, self.broker_key):
            raise VerificationFailed("public binding fails verification")
        return latest

    # ------------------------------------------------------------------
    # buyer: purchase
    # ------------------------------------------------------------------

    def purchase(self, value: int = 1, account: str | None = None) -> OwnedCoinState:
        """Buy a coin from the broker (Section 4.2, Purchase)."""
        coin_keypair = KeyPair.generate(self.params)
        request = protocol.PurchaseRequest(
            coin_y=coin_keypair.public.y,
            value=value,
            account=account if account is not None else self.address,
        )
        signed = seal(self.identity, request.to_payload())
        coin_bytes = self.broker_client.purchase(signed.encode(), account=request.account)
        coin = Coin(cert=protocol.decode_signed(coin_bytes, self.params))
        if not coin.verify(self.broker_key) or coin.coin_y != coin_keypair.public.y:
            raise VerificationFailed("broker returned an invalid coin")
        state = OwnedCoinState(coin=coin, coin_keypair=coin_keypair)
        self.owned[coin.coin_y] = state
        self._wal_owned(state)
        self.counts.purchases += 1
        return state

    def purchase_batch(self, count: int, value: int = 1, account: str | None = None) -> list[OwnedCoinState]:
        """Buy ``count`` coins in one signed round trip (Section 4.2).

        One broker operation regardless of ``count`` — the batching
        amortization the paper points out.  Atomic on the broker side.
        """
        if count < 1:
            raise ValueError("batch needs at least one coin")
        keypairs = [KeyPair.generate(self.params) for _ in range(count)]
        request = protocol.BatchPurchaseRequest(
            coins=tuple((kp.public.y, value) for kp in keypairs),
            account=account if account is not None else self.address,
        )
        signed = seal(self.identity, request.to_payload())
        minted = self.broker_client.purchase_batch(signed.encode(), account=request.account)
        if len(minted) != count:
            raise VerificationFailed("broker returned the wrong number of coins")
        states: list[OwnedCoinState] = []
        by_y = {kp.public.y: kp for kp in keypairs}
        # One randomized batch verification covers every certificate in the
        # reply — the broker attaches ``sig_c`` commit hints precisely so
        # receivers can do this.  Structural checks stay per coin; on a
        # batch failure, re-check individually to name the bad certificate
        # without rejecting the honest ones alongside it.
        dsa_batch: list[tuple[PublicKey, bytes, DsaSignature]] = []
        coins: list[Coin] = []
        for coin_bytes in minted:
            coin = Coin(cert=protocol.decode_signed(coin_bytes, self.params))
            keypair = by_y.get(coin.coin_y)
            if (
                keypair is None
                or coin.cert.signer.y != self.broker_key.y
                or not coin.verify_unsigned()
            ):
                raise VerificationFailed("broker returned an invalid batch coin")
            dsa_batch.append((coin.cert.signer, coin.cert.payload_bytes, coin.cert.signature))
            coins.append(coin)
        if not dsa_batch_verify(dsa_batch):
            bad = [coin for coin in coins if not coin.verify(self.broker_key)]
            raise VerificationFailed(
                f"broker returned {len(bad)} invalid batch coin certificate(s)"
            )
        for coin in coins:
            state = OwnedCoinState(coin=coin, coin_keypair=by_y[coin.coin_y])
            self.owned[coin.coin_y] = state
            states.append(state)
        self._wal(
            *[
                {"type": "owned_put", "entry": wallet_records.owned_entry(state)}
                for state in states
            ]
        )
        self.counts.purchases += 1
        return states

    # ------------------------------------------------------------------
    # payer: issue / transfer / deposit / renewal
    # ------------------------------------------------------------------

    def issue(self, payee: str, coin_y: int | None = None) -> CoinBinding:
        """Issue a coin this peer owns to ``payee`` (Section 4.2, Issue)."""
        candidates = self.spendable_owned()
        if coin_y is None:
            if not candidates:
                raise UnknownCoin("no unissued coin to issue")
            coin_y = candidates[0]
        state = self.owned.get(coin_y)
        if state is None:
            raise NotOwner(f"not the owner of coin {coin_y:#x}")
        if state.issued:
            raise ProtocolError("coin already issued; it must circulate by transfer")

        offer = self.peer_client.issue_offer(payee, state.coin.encode())
        holder_y, nonce = offer["holder_y"], offer["nonce"]
        # "a randomly chosen sequence number" — but never at or below one we
        # already signed (a failed earlier attempt may have published it).
        seq = max(secrets.randbelow(1 << 30), state.seq_floor + 1)
        state.seq_floor = seq
        # Journal the floor *before* the binding can be published: a crash
        # mid-issue must never lead to re-signing an already-used seq.
        self._wal_owned(state)
        binding = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=holder_y,
            seq=seq,
            exp_date=self.clock.now() + self.renewal_period,
        )
        if self.detection is not None:
            self.detection.publish_owner(self, state, binding)
        result = self.peer_client.issue_complete(
            payee, self._completion_payload(state, binding, nonce)
        )
        if not result.get("ok"):
            raise ProtocolError(f"payee rejected the issue: {result.get('reason')}")
        state.binding = binding
        self._wal_owned(state)
        self.counts.issues += 1
        return binding

    def _completion_payload(
        self, state: OwnedCoinState, binding: CoinBinding, nonce: bytes
    ) -> dict[str, Any]:
        """Build the ISSUE/TRANSFER_COMPLETE payload for a coin I own.

        Basic coins: ownership is proven with the identity key (the coin
        names its owner).  Ownerless coins (Section 5.2 approach 3):
        ownership is proven with the *coin* key, and the binding is wrapped
        in a group signature — "peers sign their messages with their group
        private keys when issuing coins" — so a cheating anonymous issuer
        can still be opened by the judge.
        """
        if state.coin.is_ownerless:
            from repro.crypto.group_signature import group_sign

            gpk = self._gpk()
            dual = DualSignedMessage(
                inner=binding.signed,
                group_signature=group_sign(gpk, self.member_key, binding.signed.encode()),
                roster_version=len(gpk.roster),
            )
            proof = schnorr_prove(
                state.coin_keypair, self._owner_proof_context(nonce, binding)
            )
            return {
                "coin": state.coin.encode(),
                "binding": None,
                "binding_dual": protocol.encode_dual(dual),
                "via_broker": False,
                "proof_t": proof.commitment,
                "proof_z": proof.response,
                "nonce": nonce,
            }
        proof = schnorr_prove(self.identity, self._owner_proof_context(nonce, binding))
        return {
            "coin": state.coin.encode(),
            "binding": binding.encode(),
            "binding_dual": None,
            "via_broker": False,
            "proof_t": proof.commitment,
            "proof_z": proof.response,
            "nonce": nonce,
        }

    def _holder_envelope(self, held: HeldCoin, op: str, **fields: Any) -> DualSignedMessage:
        operation = protocol.HolderOperation(
            op=op,
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=held.binding.via_broker,
            **fields,
        )
        return group_seal(held.holder_keypair, self.member_key, self._gpk(), operation.to_payload())

    def _pick_held(self, coin_y: int | None, owner_online: bool | None = None) -> HeldCoin:
        now = self.clock.now()
        if coin_y is not None:
            held = self.wallet.get(coin_y)
            if held is None:
                raise NotHolder(f"not holding coin {coin_y:#x}")
            return held
        for held in self.wallet.values():
            if held.is_expired(now):
                continue
            if owner_online is None:
                return held
            online = self.transport.is_online(held.coin.owner_address)
            if online == owner_online:
                return held
        raise UnknownCoin("no suitable coin in the wallet")

    def transfer(self, payee: str, coin_y: int | None = None) -> CoinBinding:
        """Transfer a held coin via its owner (Section 4.2, Transfer)."""
        held = self._pick_held(coin_y, owner_online=True)
        if held.is_expired(self.clock.now()):
            raise CoinExpired(f"coin {held.coin_y:#x} expired")
        offer = self.peer_client.transfer_offer(payee, held.coin.encode())
        envelope = self._holder_envelope(
            held, "transfer", new_holder_y=offer["holder_y"], nonce=offer["nonce"]
        )
        # The rebind we are about to see on the public list is our own doing;
        # do not alarm on it (Section 5.1: only *unexpected* updates matter).
        self._expected_rebinds.add(held.coin_y)
        response = self.peer_client.transfer_request(
            held.coin.owner_address,
            {"envelope": protocol.encode_dual(envelope), "payee": payee, "nonce": offer["nonce"]},
        )
        binding = CoinBinding(
            signed=protocol.decode_signed(response["binding"], self.params),
            via_broker=False,
        )
        if not binding.verify(held.coin.coin_public_key(self.params), self.broker_key):
            raise VerificationFailed("owner returned an invalid transfer binding")
        if binding.holder_y != offer["holder_y"] or binding.seq <= held.binding.seq:
            raise VerificationFailed("transfer binding does not match the request")
        if self.detection is not None:
            self.detection.unsubscribe(self, held.coin_y)
        del self.wallet[held.coin_y]
        self._wal_del(held.coin_y)
        self._expected_rebinds.discard(held.coin_y)
        self.counts.transfers_sent += 1
        return binding

    def transfer_via_broker(self, payee: str, coin_y: int | None = None) -> CoinBinding:
        """Transfer a held coin whose owner is offline (Downtime transfer)."""
        held = self._pick_held(coin_y, owner_online=False)
        if held.is_expired(self.clock.now()):
            raise CoinExpired(f"coin {held.coin_y:#x} expired")
        offer = self.peer_client.transfer_offer(payee, held.coin.encode())
        envelope = self._holder_envelope(
            held, "transfer", new_holder_y=offer["holder_y"], nonce=offer["nonce"]
        )
        self._expected_rebinds.add(held.coin_y)
        binding_bytes = self.broker_client.downtime_transfer(
            protocol.encode_dual(envelope), coin_y=held.coin_y
        )
        binding = CoinBinding(
            signed=protocol.decode_signed(binding_bytes, self.params), via_broker=True
        )
        if not binding.verify(held.coin.coin_public_key(self.params), self.broker_key):
            raise VerificationFailed("broker returned an invalid downtime binding")
        # Relay the completed payment to the payee (the broker stays out of
        # the payer-payee path; Section 4.2 has the broker "send W the signed
        # binding" — the relay is equivalent and keeps W hidden from B).
        result = self.peer_client.transfer_complete(
            payee,
            {
                "coin": held.coin.encode(),
                "binding": binding.encode(),
                "binding_dual": None,
                "via_broker": True,
                "proof_t": None,
                "proof_z": None,
                "nonce": offer["nonce"],
            },
        )
        if not result.get("ok"):
            raise ProtocolError(f"payee rejected the downtime transfer: {result.get('reason')}")
        if self.detection is not None:
            self.detection.unsubscribe(self, held.coin_y)
        del self.wallet[held.coin_y]
        self._wal_del(held.coin_y)
        self._expected_rebinds.discard(held.coin_y)
        self.counts.downtime_transfers += 1
        return binding

    def deposit(self, coin_y: int | None = None, payout_to: str | None = None) -> int:
        """Deposit a held coin at the broker for cash (Section 4.2, Deposit).

        ``payout_to`` defaults to a fresh pseudonymous bearer account so the
        deposit reveals nothing; pass the peer's named account to cash out
        identifiably.  Returns the credited value.
        """
        held = self._pick_held(coin_y)
        account = payout_to if payout_to is not None else "bearer-" + secrets.token_hex(8)
        envelope = self._holder_envelope(held, "deposit", payout_to=account)
        result = self.broker_client.deposit(protocol.encode_dual(envelope), coin_y=held.coin_y)
        if not result.get("ok"):
            raise ProtocolError("broker rejected the deposit")
        if self.detection is not None:
            self.detection.unsubscribe(self, held.coin_y)
        del self.wallet[held.coin_y]
        self._wal_del(held.coin_y)
        self.counts.deposits += 1
        return result["credited"]

    def top_up(self, coin_y: int, delta: int, funding_account: str | None = None) -> int:
        """Increase a held coin's value by ``delta`` (broker-only operation).

        Holdership is proven anonymously; the funding debit is authorized
        with this peer's identity key against ``funding_account`` (default:
        the peer's named account — fund from an account created under a
        fresh identity if the link matters).  Returns the new value.
        """
        if delta <= 0:
            raise ValueError("top-up delta must be positive")
        held = self.wallet.get(coin_y)
        if held is None:
            raise NotHolder(f"not holding coin {coin_y:#x}")
        account = funding_account if funding_account is not None else self.address
        auth = funding_voucher(self.identity, account, delta, coin_y)
        envelope = self._holder_envelope(held, "top_up", delta=delta, funding_auth=auth)
        new_cert = self.broker_client.top_up(protocol.encode_dual(envelope), coin_y=coin_y)
        new_coin = Coin(cert=protocol.decode_signed(new_cert, self.params))
        if (
            not new_coin.verify(self.broker_key)
            or new_coin.coin_y != coin_y
            or new_coin.value != held.coin.value + delta
        ):
            raise VerificationFailed("broker returned an invalid topped-up coin")
        held.coin = new_coin
        self._wal_held(held)
        return new_coin.value

    def renew(self, coin_y: int) -> CoinBinding:
        """Renew a held coin via its owner, or the broker when offline."""
        held = self.wallet.get(coin_y)
        if held is None:
            raise NotHolder(f"not holding coin {coin_y:#x}")
        envelope = self._holder_envelope(held, "renewal")
        owner = held.coin.owner_address
        if owner is not None and self.transport.is_online(owner):
            response = self.peer_client.renew_request(owner, protocol.encode_dual(envelope))
            binding = CoinBinding(
                signed=protocol.decode_signed(response, self.params), via_broker=False
            )
            self.counts.renewals_sent += 1
        else:
            response = self.broker_client.downtime_renewal(
                protocol.encode_dual(envelope), coin_y=coin_y
            )
            binding = CoinBinding(
                signed=protocol.decode_signed(response, self.params), via_broker=True
            )
            self.counts.downtime_renewals += 1
        if not binding.verify(held.coin.coin_public_key(self.params), self.broker_key):
            raise VerificationFailed("renewal returned an invalid binding")
        if binding.holder_y != held.holder_keypair.public.y or binding.seq <= held.binding.seq:
            raise VerificationFailed("renewal binding does not match")
        held.binding = binding
        self._wal_held(held)
        return binding

    def renew_due_coins(self) -> int:
        """Renew every held coin inside its renewal window; returns count."""
        window = self.renewal_period * RENEWAL_WINDOW_FRACTION
        due = [
            coin_y
            for coin_y, held in self.wallet.items()
            if held.needs_renewal(self.clock.now(), window)
        ]
        for coin_y in due:
            self.renew(coin_y)
        return len(due)

    def pay(self, payee: str, preferences: tuple[str, ...] = ("transfer", "downtime_transfer", "issue", "purchase_issue")) -> str:
        """Make one unit payment to ``payee`` following a preference order.

        The preference tuple mirrors the paper's Section 6.1 policies; each
        entry is tried in order and the first applicable method is used.
        Returns the method that succeeded.  Raises
        :class:`~repro.core.errors.ProtocolError` if no method applies.

        When this peer runs behind circuit breakers and every attempted
        method failed for *availability* reasons (a tripped breaker, an
        offline destination, exhausted retries) rather than wallet-state
        reasons, the payment is queued instead of failing the user and
        ``"queued"`` is returned; :meth:`drain_payment_queue` replays it
        once the destination recovers.
        """
        degraded = False
        for method in preferences:
            try:
                if method == "transfer":
                    self.transfer(payee)
                elif method == "downtime_transfer":
                    self.transfer_via_broker(payee)
                elif method == "issue":
                    self.issue(payee)
                elif method == "purchase_issue":
                    state = self.purchase()
                    self.issue(payee, state.coin_y)
                elif method == "deposit_purchase_issue":
                    held = self._pick_held(None, owner_online=False)
                    self.deposit(held.coin_y)
                    state = self.purchase()
                    self.issue(payee, state.coin_y)
                else:
                    raise ValueError(f"unknown payment method {method!r}")
                return method
            except (NodeOffline, ServiceUnavailable, CircuitOpen):
                # Availability failures: the method was applicable but the
                # destination is (for now) unreachable — a tripped breaker
                # short-circuits here without consuming any retry budget.
                degraded = True
                continue
            except (UnknownCoin, NotHolder, CoinExpired):
                # Wallet-state failures: this method simply does not apply;
                # degrade gracefully to the next preference.
                continue
        if degraded and self.breakers is not None:
            self.payment_queue.append((payee, preferences))
            return "queued"
        raise ProtocolError(f"no payment method in {preferences} was applicable")

    def drain_payment_queue(self) -> int:
        """Replay queued payments now that (some) destinations recovered.

        The queue is swapped out before replay, so each deferred payment is
        re-attempted exactly once per drain: an entry that succeeds leaves
        the queue for good; one whose destination is still degraded re-queues
        itself via :meth:`pay` and waits for the next drain.  Returns the
        number of payments that actually completed.
        """
        pending, self.payment_queue = self.payment_queue, []
        drained = 0
        for payee, preferences in pending:
            if self.pay(payee, preferences) != "queued":
                drained += 1
        return drained

    def pay_amount(
        self,
        payee: str,
        amount: int,
        preferences: tuple[str, ...] = ("transfer", "downtime_transfer", "issue", "purchase_issue"),
    ) -> list[tuple[str, int]]:
        """Pay an arbitrary ``amount`` using (possibly) multiple coins.

        Coin selection is greedy largest-first over the wallet (held coins
        of any denomination), topping up the remainder with the preference
        policy's fallback methods one unit-coin at a time.  Returns the list
        of ``(method, value)`` legs executed.  If a leg fails midway, the
        already-paid legs stand — coins are bearer value; partial payment is
        a business-level matter, exactly like cash.
        """
        if amount <= 0:
            raise ValueError("amount must be positive")
        legs: list[tuple[str, int]] = []
        remaining = amount
        # Spend existing holdings largest-first without overshooting.
        while remaining > 0:
            now = self.clock.now()
            candidates = sorted(
                (
                    held
                    for held in self.wallet.values()
                    if not held.is_expired(now) and held.value <= remaining
                ),
                key=lambda held: held.value,
                reverse=True,
            )
            if not candidates:
                break
            held = candidates[0]
            owner = held.coin.owner_address
            try:
                if owner is not None and self.transport.is_online(owner):
                    self.transfer(payee, held.coin_y)
                    legs.append(("transfer", held.value))
                else:
                    self.transfer_via_broker(payee, held.coin_y)
                    legs.append(("downtime_transfer", held.value))
                remaining -= held.value
            except (NodeOffline, NetworkError, ProtocolError):
                # This coin is unusable right now; exclude it and move on.
                break
        # Cover the remainder with the policy's non-transfer methods.
        fallback = tuple(m for m in preferences if m not in ("transfer", "downtime_transfer"))
        while remaining > 0:
            method = self.pay(payee, fallback)
            legs.append((method, 1))
            remaining -= 1
        return legs

    # ------------------------------------------------------------------
    # payee handlers
    # ------------------------------------------------------------------

    def _handle_payment_offer(self, src: str, coin_bytes: bytes) -> dict[str, Any]:
        """Offer step of issue/transfer: mint a holder key, hand out a nonce."""
        coin = Coin(cert=protocol.decode_signed(coin_bytes, self.params))
        if not coin.verify(self.broker_key):
            raise VerificationFailed("offered coin certificate is invalid")
        holder_keypair = KeyPair.generate(self.params)
        nonce = secrets.token_bytes(16)
        self._pending[nonce] = _PendingOffer(
            coin_y=coin.coin_y, holder_keypair=holder_keypair, payer=src
        )
        return {"holder_y": holder_keypair.public.y, "nonce": nonce}

    def _handle_payment_complete(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Completion step: verify coin, binding, and ownership proof; accept."""
        nonce = payload["nonce"]
        pending = self._pending.get(nonce)
        if pending is None:
            return {"ok": False, "reason": "no pending offer for this nonce"}
        coin = Coin(cert=protocol.decode_signed(payload["coin"], self.params))
        if not coin.verify(self.broker_key) or coin.coin_y != pending.coin_y:
            return {"ok": False, "reason": "coin does not match the offer"}
        if payload.get("binding_dual") is not None:
            # Ownerless coin: the binding travels group-countersigned.
            dual = protocol.decode_dual(payload["binding_dual"], self.params)
            if not self._verify_dual(dual):
                return {"ok": False, "reason": "issuer group signature invalid"}
            binding = CoinBinding(signed=dual.inner, via_broker=False)
        else:
            binding = CoinBinding(
                signed=protocol.decode_signed(payload["binding"], self.params),
                via_broker=bool(payload["via_broker"]),
            )
        if not binding.verify(coin.coin_public_key(self.params), self.broker_key):
            return {"ok": False, "reason": "binding signature invalid"}
        if binding.holder_y != pending.holder_keypair.public.y:
            return {"ok": False, "reason": "binding names a different holder key"}
        if self.clock.now() > binding.exp_date:
            return {"ok": False, "reason": "binding already expired"}
        if not binding.via_broker:
            # Ownership challenge, bound to our nonce and this exact binding.
            # Basic coins: the owner proves knowledge of the identity key the
            # coin names.  Ownerless coins: knowledge of the coin key itself.
            proof = SchnorrProof(commitment=payload["proof_t"], response=payload["proof_z"])
            if coin.is_ownerless:
                prover_key = coin.coin_public_key(self.params)
            else:
                prover_key = PublicKey(params=self.params, y=coin.owner_y)
            if not schnorr_verify(prover_key, proof, self._owner_proof_context(nonce, binding)):
                return {"ok": False, "reason": "ownership proof failed"}
        if self.detection is not None:
            # Section 5.1: "a peer does not accept payment until verifying
            # that the relevant public binding has been properly updated."
            published = self.detection.fetch_binding(self.address, coin.coin_y)
            if published is None or published.encode() != binding.encode():
                return {"ok": False, "reason": "public binding not updated"}
        del self._pending[nonce]
        held = HeldCoin(coin=coin, holder_keypair=pending.holder_keypair, binding=binding)
        self.wallet[coin.coin_y] = held
        self._wal_held(held)
        if self.detection is not None:
            self.detection.subscribe(self, coin.coin_y)
        self.counts.payments_received += 1
        return {"ok": True, "reason": None}

    # ------------------------------------------------------------------
    # owner handlers
    # ------------------------------------------------------------------

    def _serve_holder_request(self, data: bytes, expected_op: str) -> tuple[protocol.HolderOperation, DualSignedMessage, OwnedCoinState]:
        try:
            envelope = protocol.decode_dual(data, self.params)
            operation = protocol.HolderOperation.from_payload(envelope.payload)
        except (ValueError, KeyError) as exc:
            raise ProtocolError(f"malformed holder request: {exc}") from exc
        if operation.op != expected_op:
            raise ProtocolError(f"expected a {expected_op} request")
        if not self._verify_dual(envelope):
            raise VerificationFailed("holder envelope signatures invalid")
        coin = Coin(cert=protocol.decode_signed(operation.coin_cert, self.params))
        state = self.owned.get(coin.coin_y)
        if state is None:
            raise NotOwner(f"I do not own coin {coin.coin_y:#x}")
        if state.dirty:
            self._check_coin_state(state)
        if state.binding is None:
            raise ProtocolError("coin was never issued")
        proof = CoinBinding(
            signed=protocol.decode_signed(operation.proof_binding, self.params),
            via_broker=operation.proof_via_broker,
        )
        if proof.encode() != state.binding.encode():
            raise NotHolder("proof binding does not match the owner's state")
        if envelope.coin_signer.y != proof.holder_y:
            raise NotHolder("request not signed with the bound holder key")
        if self.clock.now() > proof.exp_date:
            raise CoinExpired("held binding has expired")
        # Audit trail: keep the dual-signed request as relinquishment proof.
        state.relinquishments.append(data)
        return operation, envelope, state

    def _next_binding(self, state: OwnedCoinState, holder_y: int) -> CoinBinding:
        assert state.binding is not None
        seq = max(state.binding.seq, state.seq_floor) + 1
        state.seq_floor = seq
        return CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=holder_y,
            seq=seq,
            exp_date=self.clock.now() + self.renewal_period,
        )

    def _handle_transfer_request(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Owner side of Transfer: re-bind the coin and notify the payee."""
        operation, envelope, state = self._serve_holder_request(
            payload["envelope"], "transfer"
        )
        assert operation.new_holder_y is not None
        binding = self._next_binding(state, operation.new_holder_y)
        if self.detection is not None:
            self.detection.publish_owner(self, state, binding)
        result = self.peer_client.transfer_complete(
            payload["payee"], self._completion_payload(state, binding, operation.nonce)
        )
        if not result.get("ok"):
            # Roll back: the payee refused, the old binding stands.
            state.relinquishments.pop()
            raise ProtocolError(f"payee rejected the transfer: {result.get('reason')}")
        state.binding = binding
        self._wal_owned(state)
        self.counts.transfers_handled += 1
        return {"binding": binding.encode()}

    def _handle_renew_request(self, src: str, data: bytes) -> bytes:
        """Owner side of Renewal: same holder, bumped seq and expiry."""
        operation, envelope, state = self._serve_holder_request(data, "renewal")
        binding = self._next_binding(state, state.binding.holder_y)
        if self.detection is not None:
            self.detection.publish_owner(self, state, binding)
        state.binding = binding
        self._wal_owned(state)
        self.counts.renewals_handled += 1
        return binding.encode()

    # ------------------------------------------------------------------
    # real-time detection (holder-side monitoring)
    # ------------------------------------------------------------------

    def _handle_binding_update(self, src: str, record_bytes: bytes) -> None:
        """Push notification from the DHT: did someone move *my* coin?"""
        from repro.dht.binding_store import BindingRecord

        record = BindingRecord.from_encoded(record_bytes)
        info = record.binding()
        held = self.wallet.get(info["coin_y"])
        if held is None or info["coin_y"] in self._expected_rebinds:
            return None
        my_key = held.holder_keypair.public.y
        if info["holder_y"] != my_key and info["seq"] >= held.binding.seq:
            self.alarms.append(
                Alarm(
                    coin_y=info["coin_y"],
                    expected_holder_y=my_key,
                    observed_holder_y=info["holder_y"],
                    observed_seq=info["seq"],
                    at=self.clock.now(),
                )
            )
        return None
