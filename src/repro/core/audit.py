"""Audit trails and fraud adjudication (paper Sections 2, 4.3).

WhoPay's security model is *detect-and-punish*: "fraud such as double
spending is either prevented, or detectable and punishable", and "the audit
trails of peers and the broker ensure they will be detected and the culprits
identified and punished".  This module is the adjudication machinery:

* :func:`adjudicate_double_deposit` — given the broker's double-deposit
  evidence, decide whether a *holder* spent a coin after relinquishing it
  (the relinquishment record in the owner's audit trail convicts them) or
  the *owner* double-issued (no relinquishment exists), and have the judge
  open exactly the group signatures involved — fairness in action.
* :func:`verify_relinquishment` — check one audit-trail entry: a dual-signed
  transfer request proving the then-holder gave the coin up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import protocol
from repro.core.coin import Coin
from repro.core.errors import FraudDetected
from repro.core.judge import Judge
from repro.crypto.params import DlogParams


@dataclass(frozen=True)
class Verdict:
    """The outcome of an adjudication."""

    culprit: str | None  # registered identity, or None if undecidable
    role: str  # "holder" | "owner" | "unknown"
    reason: str
    opened_identities: tuple[str, ...]


def verify_relinquishment(
    data: bytes, params: DlogParams, judge: Judge, coin_y: int
) -> tuple[int, int] | None:
    """Validate one relinquishment record from an owner's audit trail.

    Returns ``(holder_y, proof_seq)`` for a valid dual-signed transfer (or
    deposit) request concerning ``coin_y``, else ``None``.
    """
    try:
        envelope = protocol.decode_dual(data, params)
        operation = protocol.HolderOperation.from_payload(envelope.payload)
        gpk = judge.group_public_key_at(envelope.roster_version)
        if not envelope.verify(gpk):
            return None
        coin = Coin(cert=protocol.decode_signed(operation.coin_cert, params))
        if coin.coin_y != coin_y:
            return None
        proof = protocol.decode_signed(operation.proof_binding, params)
        binding = proof.payload
        if envelope.coin_signer.y != binding["holder_y"]:
            return None
        return binding["holder_y"], binding["seq"]
    except (ValueError, KeyError, TypeError):
        return None


def adjudicate_double_deposit(
    event: FraudDetected,
    owner_trail: list[bytes],
    params: DlogParams,
    judge: Judge,
) -> Verdict:
    """Decide who double-spent, given a double-deposit fraud event.

    ``event.evidence`` carries the two deposit envelopes the broker saw;
    ``owner_trail`` is the coin owner's relinquishment audit trail (the
    owner is motivated to produce it — without it, the blame defaults to the
    owner, whose identity is already exposed in the coin).

    Logic: each depositor proved holdership under some binding with a holder
    key and sequence number.  A deposit whose exact ``(holder_y, seq)`` also
    appears in a valid relinquishment (the holder demonstrably asked for the
    coin to be moved on) is holder fraud — the judge opens exactly that
    depositor's group signature.  If neither deposit is covered by a
    relinquishment, the owner produced two live bindings — owner fraud (the
    owner's identity is already exposed in the coin, so no opening needed).
    """
    coin_y = event.evidence.get("coin_y")
    deposits = [
        event.evidence.get("first_deposit"),
        event.evidence.get("second_request"),
    ]
    if coin_y is None or any(d is None for d in deposits):
        return Verdict(culprit=None, role="unknown", reason="incomplete evidence", opened_identities=())

    relinquishments: set[tuple[int, int]] = set()
    for entry in owner_trail:
        checked = verify_relinquishment(entry, params, judge, coin_y)
        if checked is not None:
            relinquishments.add(checked)

    culprits: list[str] = []
    for deposit in deposits:
        try:
            envelope = protocol.decode_dual(deposit, params)
            operation = protocol.HolderOperation.from_payload(envelope.payload)
            proof = protocol.decode_signed(operation.proof_binding, params)
            key = (proof.payload["holder_y"], proof.payload["seq"])
        except (ValueError, KeyError, TypeError):
            continue
        if key in relinquishments:
            identity = judge.open(envelope.group_signature)
            if identity is not None:
                culprits.append(identity)

    if culprits:
        return Verdict(
            culprit=culprits[0],
            role="holder",
            reason="deposited a coin after a signed relinquishment at the same sequence",
            opened_identities=tuple(culprits),
        )
    return Verdict(
        culprit=None,  # caller maps the coin to its (exposed) owner identity
        role="owner",
        reason="no relinquishment covers either deposited binding; owner double-issued",
        opened_identities=(),
    )
