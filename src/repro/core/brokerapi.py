"""The unified broker surface: one protocol, two implementations.

PR 7 splits the mint across ``M`` shards (consistent hashing over coin and
account keys, :mod:`repro.core.sharding`) — but everything that *consumes*
a broker (tests, benchmarks, the simulation, operator tooling) should not
care whether it talks to one :class:`~repro.core.broker.Broker` or a
federation.  :class:`BrokerAPI` is that contract; :class:`ShardRouter` is
the federation-side implementation, aggregating ledgers, counters, and
conservation checks across shards.

Note what the router is *not*: a network hop.  Peers route their RPCs
directly to the owning shard (``BrokerClient`` carries the shard map); the
router is the control-plane facade for account provisioning and auditing.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.core.broker import Broker, OperationCounts
from repro.core.sharding import ShardMap
from repro.crypto.keys import PublicKey


@runtime_checkable
class BrokerAPI(Protocol):
    """What every broker implementation — standalone or federated — exposes.

    :class:`~repro.core.broker.Broker` satisfies this structurally; the
    :class:`ShardRouter` implements it by aggregation.  Keep this surface
    small: it is the operator/audit contract, not the wire protocol (which
    lives in :mod:`repro.core.protocol`).
    """

    @property
    def public_key(self) -> PublicKey:
        """The system-wide coin-signing key ``pk_B``."""
        ...

    def open_account(self, name: str, identity: PublicKey, balance: int) -> None:
        """Open a cash account (value enters the system here)."""
        ...

    def open_account_from_certificate(self, certificate: Any, ca_key: PublicKey, balance: int) -> None:
        """Open an account from a CA-issued identity certificate."""
        ...

    def balance(self, name: str) -> int:
        """Current balance of ``name`` (0 for unknown accounts)."""
        ...

    def circulating_value(self) -> int:
        """Total value of coins minted and not yet deposited."""
        ...

    def verify_conservation(self, expected_total: int) -> bool:
        """Accounts + circulating value must equal total opened value."""
        ...

    def export_ledger(self) -> dict[str, Any]:
        """Audit export: counts, balances, circulation (no secrets)."""
        ...

    def complete_pending_handoffs(self) -> int:
        """Re-drive any cross-shard handoffs orphaned by a crash."""
        ...

    def health(self) -> dict[str, Any]:
        """Liveness/health surface: online flags and in-flight work.

        This is what a supervisor or operator dashboard polls — it must
        stay cheap (no signature checks, no fan-out RPCs) and must not
        leak secrets.
        """
        ...


class ShardRouter:
    """A federation of broker shards behind the :class:`BrokerAPI` surface.

    Account operations route to the account's home shard (the same ring
    peers use, so the balance an operator reads is the balance the debit
    hit); read-side aggregates (circulation, ledgers, conservation) fan out
    and merge.

    Conservation across a federation needs one extra term: value currently
    *in flight* between shards.  Each shard conserves locally against its
    own ``total_opened`` baseline (see :mod:`repro.store.apply`); the
    router's :meth:`verify_conservation` therefore only holds once no
    handoffs are pending — call :meth:`complete_pending_handoffs` first
    when a storm may have orphaned some.
    """

    def __init__(self, shards: Iterable[Broker], shard_map: ShardMap) -> None:
        self.shards: list[Broker] = list(shards)
        if not self.shards:
            raise ValueError("a federation needs at least one shard")
        self.shard_map = shard_map
        self._by_address = {shard.address: shard for shard in self.shards}
        if set(self._by_address) != set(shard_map.addresses):
            raise ValueError("shard map and shard list disagree on addresses")

    # -- routing -----------------------------------------------------------------

    def shard_for_account(self, name: str) -> Broker:
        """The shard that owns account ``name``."""
        return self._by_address[self.shard_map.shard_for_account(name)]

    def shard_for_coin(self, coin_y: int) -> Broker:
        """The shard that owns coin key ``coin_y``."""
        return self._by_address[self.shard_map.shard_for_coin(coin_y)]

    # -- BrokerAPI ---------------------------------------------------------------

    @property
    def params(self):
        """Shared group parameters (identical across shards)."""
        return self.shards[0].params

    @property
    def clock(self):
        """Shared simulation clock."""
        return self.shards[0].clock

    @property
    def renewal_period(self) -> float:
        """Binding renewal period (identical across shards)."""
        return self.shards[0].renewal_period

    @property
    def public_key(self) -> PublicKey:
        """The federation's shared signing key ``pk_B``."""
        return self.shards[0].public_key

    @property
    def address(self) -> str:
        """Default shard address (clients carrying a shard map re-route)."""
        return self.shards[0].address

    def open_account(self, name: str, identity: PublicKey, balance: int) -> None:
        """Open the account on its home shard."""
        self.shard_for_account(name).open_account(name, identity, balance)

    def open_account_from_certificate(self, certificate: Any, ca_key: PublicKey, balance: int) -> None:
        """Open a certificate-backed account on its home shard."""
        self.shard_for_account(certificate.subject).open_account_from_certificate(
            certificate, ca_key, balance
        )

    def balance(self, name: str) -> int:
        """Balance as recorded by the account's home shard."""
        return self.shard_for_account(name).balance(name)

    def circulating_value(self) -> int:
        """Circulating coin value summed over every shard."""
        return sum(shard.circulating_value() for shard in self.shards)

    @property
    def total_opened(self) -> int:
        """Sum of the per-shard conservation baselines.

        With no handoffs in flight this equals the externally opened value;
        mid-handoff it may transiently differ by the in-flight amount.
        """
        return sum(shard.total_opened for shard in self.shards)

    def verify_conservation(self, expected_total: int) -> bool:
        """Federation-wide conservation: every shard locally, and the sum.

        Requires no in-flight handoffs (each one carries value between two
        shards' baselines); complete them first.
        """
        if any(shard.pending_handoffs for shard in self.shards):
            return False
        balances = sum(
            account.balance
            for shard in self.shards
            for account in shard.accounts.values()
        )
        return balances + self.circulating_value() == expected_total

    @property
    def counts(self) -> OperationCounts:
        """Merged operation counters (client ops + cross-shard prepares)."""
        merged = OperationCounts()
        for shard in self.shards:
            merged.merge(shard.counts)
        return merged

    def per_shard_counts(self) -> dict[str, OperationCounts]:
        """Per-shard counters — the load-flattening measurement surface."""
        return {shard.address: shard.counts for shard in self.shards}

    @property
    def fraud_events(self) -> list:
        """Double-spend evidence collected anywhere in the federation."""
        events = []
        for shard in self.shards:
            events.extend(shard.fraud_events)
        return events

    def export_ledger(self) -> dict[str, Any]:
        """Merged audit export plus the per-shard breakdown."""
        merged_counts = self.counts
        accounts: dict[str, int] = {}
        for shard in self.shards:
            for name, account in shard.accounts.items():
                accounts[name] = account.balance
        return {
            "accounts": accounts,
            "coins_minted": sum(len(shard.valid_coins) for shard in self.shards),
            "coins_deposited": sum(len(shard.deposited) for shard in self.shards),
            "circulating_value": self.circulating_value(),
            "downtime_bindings": sum(len(shard.downtime_bindings) for shard in self.shards),
            "fraud_events": len(self.fraud_events),
            "operation_counts": {
                "purchases": merged_counts.purchases,
                "deposits": merged_counts.deposits,
                "downtime_transfers": merged_counts.downtime_transfers,
                "downtime_renewals": merged_counts.downtime_renewals,
                "syncs": merged_counts.syncs,
                "binding_queries": merged_counts.binding_queries,
                "handoffs": merged_counts.handoffs,
            },
            "pending_handoffs": sum(len(shard.pending_handoffs) for shard in self.shards),
            "shards": {shard.address: shard.export_ledger() for shard in self.shards},
        }

    def complete_pending_handoffs(self) -> int:
        """Re-drive orphaned handoffs on every shard; returns the total."""
        return sum(shard.complete_pending_handoffs() for shard in self.shards)

    def health(self) -> dict[str, Any]:
        """Federation health: per-shard liveness plus roll-up flags.

        ``ok`` is True only when every shard is online and no handoff is
        stranded mid-flight — the condition under which
        :meth:`verify_conservation` can hold.
        """
        shards = {shard.address: shard.health() for shard in self.shards}
        return {
            "ok": all(entry["ok"] for entry in shards.values()),
            "shards_online": sum(1 for entry in shards.values() if entry["online"]),
            "shards_total": len(self.shards),
            "pending_handoffs": sum(entry["pending_handoffs"] for entry in shards.values()),
            "shards": shards,
        }
