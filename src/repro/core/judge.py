"""The judge: registration authority and identity escrow (Sections 2, 3.2).

The judge enrolls every user into the single system-wide group, keeps the
membership registry and the group master (opening) key, and — together with
the broker — provides *fairness*: on presented evidence of fraud it opens
the group signatures involved and returns the real identities, learning and
revealing nothing about any other transaction.

The opening key can be split among ``N`` judges (Shamir, threshold ``K``);
:meth:`Judge.threshold_open` demonstrates reconstruction-based opening.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.elgamal import ElGamalKeyPair, elgamal_decrypt
from repro.crypto.group_signature import GroupManager, GroupMemberKey, GroupPublicKey, GroupSignature
from repro.crypto.keys import KeyPair
from repro.crypto.params import DlogParams, default_params
from repro.crypto.shamir import combine_shares


@dataclass(frozen=True)
class Enrollment:
    """What a user receives from registration."""

    member_key: GroupMemberKey
    group_public_key: GroupPublicKey


class Judge:
    """The trusted registration/escrow authority."""

    def __init__(self, params: DlogParams | None = None) -> None:
        self.params = params or default_params()
        self._manager = GroupManager(self.params)
        self.openings_performed = 0
        #: Revocation floor: verifiers must refuse group signatures minted
        #: against roster versions below this (else an expelled member could
        #: keep signing with a pre-expulsion snapshot).  Raised by expel().
        self.minimum_accepted_version = 0

    # -- registration --------------------------------------------------------

    def register(self, identity: str) -> GroupMemberKey:
        """Enroll ``identity``; returns its group private key ``gk``.

        The caller must re-fetch :meth:`group_public_key` afterwards — the
        roster grew, and signatures verify only against a roster snapshot
        that contains the signer.
        """
        return self._manager.register(identity)

    def group_public_key(self) -> GroupPublicKey:
        """Current group public key (with roster snapshot)."""
        return self._manager.public_key()

    def group_public_key_at(self, version: int) -> GroupPublicKey:
        """The group public key at a given roster version.

        Used by verifiers to reconstruct the exact snapshot a dual-signed
        envelope was produced against (see ``DualSignedMessage.roster_version``).
        """
        return self._manager.public_key_at(version)

    def member_count(self) -> int:
        """Number of currently registered users."""
        return self._manager.member_count()

    def expel(self, identity: str) -> int:
        """Remove a convicted member and raise the revocation floor.

        Section 5.1's "mechanisms to detect and remove misbehaving nodes":
        after a fraud verdict, the judge removes the culprit from the group
        roster.  Signatures minted against the new snapshot exclude them,
        and the raised :attr:`minimum_accepted_version` tells every verifier
        to refuse signatures replayed from pre-expulsion snapshots — while
        the judge remains able to *open* the member's historical signatures
        (the evidence trail survives).
        """
        version = self._manager.expel(identity)
        self.minimum_accepted_version = version
        return version

    def is_expelled(self, identity: str) -> bool:
        """True if ``identity`` has been removed from the group."""
        return self._manager.is_expelled(identity)

    # -- fairness --------------------------------------------------------------

    def open(self, signature: GroupSignature) -> str | None:
        """Reveal the signer of one group signature (law-enforcement path).

        Only the specific transaction's signature is examined; nothing about
        other transactions is learned — the property Section 4.3 calls
        fairness.
        """
        self.openings_performed += 1
        return self._manager.open(signature)

    # -- threshold escrow --------------------------------------------------------

    def export_opening_shares(self, n: int, k: int) -> list[tuple[int, int]]:
        """Split the opening key among ``n`` judges (threshold ``k``)."""
        return self._manager.export_opening_shares(n, k)

    def threshold_open(
        self, shares: list[tuple[int, int]], signature: GroupSignature
    ) -> str | None:
        """Open a signature using ``k`` reconstructed shares instead of the key.

        Demonstrates the Section 3.2 deployment where no single judge holds
        the master key.  Returns ``None`` when the shares do not reconstruct
        the true opening key (e.g. too few) or the signer is unregistered.
        """
        secret = combine_shares(shares, self.params.q)
        try:
            keypair = ElGamalKeyPair(keypair=KeyPair.from_secret(self.params, secret))
        except ValueError:
            return None
        h = elgamal_decrypt(keypair, signature.ciphertext)
        self.openings_performed += 1
        return self._manager._registry.get(h)
