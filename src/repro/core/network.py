"""One-call assembly of a complete WhoPay deployment.

:class:`WhoPayNetwork` wires together everything a scenario needs — the
transport, clock, judge, broker, peers, and optionally the DHT-backed
real-time detection service — with sane defaults, so examples and tests can
say::

    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", balance=10)
    bob = net.add_peer("bob")
    coin = alice.purchase()
    alice.issue("bob", coin.coin_y)
"""

from __future__ import annotations

from repro.core.broker import Broker
from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.detection import DetectionService
from repro.core.judge import Judge
from repro.core.peer import Peer
from repro.crypto.params import DlogParams, default_params
from repro.dht.binding_store import BindingStore
from repro.dht.chord import ChordRing
from repro.dht.notify import NotificationHub
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan, Transport


class WhoPayNetwork:
    """A fully wired WhoPay system in one object."""

    def __init__(
        self,
        params: DlogParams | None = None,
        enable_detection: bool = False,
        dht_size: int = 8,
        dht_backend: str = "chord",
        sync_mode: str = "proactive",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.params = params or default_params()
        self.transport = Transport()
        self.clock = Clock()
        # Partition windows in a FaultPlan are scheduled against this clock.
        self.transport.clock = self.clock
        self.retry_policy = retry_policy
        self.judge = Judge(self.params)
        self.broker = Broker(
            self.transport,
            judge=self.judge,
            params=self.params,
            clock=self.clock,
            renewal_period=renewal_period,
        )
        self.sync_mode = sync_mode
        self.renewal_period = renewal_period
        self.peers: dict[str, Peer] = {}
        # PKI: every peer gets a CA-issued identity certificate (the
        # "public key certificate" of Section 4.2's purchase flow).
        from repro.pki import CertificateAuthority

        self.ca = CertificateAuthority(self.params)
        self.detection: DetectionService | None = None
        if enable_detection:
            # The §5.1 infrastructure is DHT-agnostic; pick the fabric.
            if dht_backend == "chord":
                fabric = ChordRing(self.transport, size=dht_size)
            elif dht_backend == "kademlia":
                from repro.dht.kademlia import KademliaNetwork

                fabric = KademliaNetwork(self.transport, size=dht_size)
            else:
                raise ValueError("dht_backend must be 'chord' or 'kademlia'")
            store = BindingStore(fabric, self.params, self.broker.public_key)
            hub = NotificationHub(store)
            self.detection = DetectionService(store, hub, self.params)
            self.broker.detection = self.detection

    def add_peer(self, address: str, balance: int = 0, sync_mode: str | None = None) -> Peer:
        """Register a user: judge enrollment, broker account, transport node."""
        member_key = self.judge.register(address)
        peer = Peer(
            self.transport,
            address=address,
            params=self.params,
            clock=self.clock,
            judge=self.judge,
            member_key=member_key,
            broker_address=self.broker.address,
            broker_key=self.broker.public_key,
            sync_mode=sync_mode if sync_mode is not None else self.sync_mode,
            renewal_period=self.renewal_period,
            retry_policy=self.retry_policy,
        )
        peer.detection = self.detection
        peer.certificate = self.ca.issue(address, peer.identity.public, self.clock.now())
        self.broker.open_account_from_certificate(peer.certificate, self.ca.public_key, balance)
        self.peers[address] = peer
        return peer

    def peer(self, address: str) -> Peer:
        """Look up a peer by address."""
        return self.peers[address]

    def advance(self, seconds: float) -> float:
        """Move simulated time forward."""
        return self.clock.advance(seconds)

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Install (or remove, with ``None``) a fault plan on the fabric."""
        self.transport.install_faults(plan)
