"""One-call assembly of a complete WhoPay deployment.

:class:`WhoPayNetwork` wires together everything a scenario needs — the
transport, clock, judge, broker, peers, and optionally the DHT-backed
real-time detection service — with sane defaults, so examples and tests can
say::

    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", PeerConfig(balance=10))
    bob = net.add_peer("bob")
    coin = alice.purchase()
    alice.issue("bob", coin.coin_y)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.broker import Broker
from repro.core.brokerapi import BrokerAPI, ShardRouter
from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.detection import DetectionService
from repro.core.judge import Judge
from repro.core.peer import Peer
from repro.core.sharding import DEFAULT_POINTS_PER_SHARD, ShardMap
from repro.core.supervision import CrashHookSupervision, SupervisionPolicy
from repro.crypto.keys import KeyPair
from repro.crypto.params import DlogParams, default_params
from repro.dht.binding_store import BindingStore
from repro.dht.chord import ChordRing
from repro.dht.notify import NotificationHub
from repro.net.liveness import BreakerConfig
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan, Transport
from repro.store.crashpoints import CrashPointPlan
from repro.store.journal import DurableStore
from repro.store.recovery import RecoveryManager, RecoveryResult


@dataclass(frozen=True)
class BrokerTopology:
    """How the mint side of the network is laid out.

    ``shards=1`` (default) builds the classic standalone broker at
    ``base_address`` — byte-identical wire behavior to every earlier PR.
    ``shards=M`` builds a federation of ``M`` shard brokers
    (``base_address-0`` … ``base_address-{M-1}``) sharing one signing key,
    partitioned by the consistent-hash ring in :mod:`repro.core.sharding`,
    and fronted by a :class:`~repro.core.brokerapi.ShardRouter`.
    """

    shards: int = 1
    points_per_shard: int = DEFAULT_POINTS_PER_SHARD
    base_address: str = "broker"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a topology needs at least one shard")
        if self.points_per_shard < 1:
            raise ValueError("points_per_shard must be >= 1")

    def addresses(self) -> tuple[str, ...]:
        """The shard addresses this topology creates."""
        if self.shards == 1:
            return (self.base_address,)
        return tuple(f"{self.base_address}-{index}" for index in range(self.shards))


@dataclass(frozen=True)
class PeerConfig:
    """Per-peer setup options for :meth:`WhoPayNetwork.add_peer`.

    Replaces the old positional/boolean parameter list — call sites name
    what they configure (``PeerConfig(balance=10, durable=True)``) instead
    of threading flags positionally.
    """

    balance: int = 0
    sync_mode: str | None = None
    durable: bool = False

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValueError("opening balance cannot be negative")
        if self.sync_mode not in (None, "proactive", "lazy"):
            raise ValueError("sync_mode must be 'proactive', 'lazy', or None")


class WhoPayNetwork:
    """A fully wired WhoPay system in one object."""

    def __init__(
        self,
        params: DlogParams | None = None,
        enable_detection: bool = False,
        dht_size: int = 8,
        dht_backend: str = "chord",
        sync_mode: str = "proactive",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy: RetryPolicy | None = None,
        store_dir: str | Path | None = None,
        topology: BrokerTopology | None = None,
        breaker_config: BreakerConfig | None = None,
    ) -> None:
        self.params = params or default_params()
        self.transport = Transport()
        self.clock = Clock()
        # Partition windows in a FaultPlan are scheduled against this clock.
        self.transport.clock = self.clock
        self.retry_policy = retry_policy
        self.judge = Judge(self.params)
        # Durability: with a store_dir each broker shard journals every
        # mutation to <store_dir>/<address> and can be killed/recovered.
        self.store_dir = None if store_dir is None else Path(store_dir)
        self.topology = topology or BrokerTopology()
        addresses = self.topology.addresses()
        # One signing key for the whole federation: a coin minted by any
        # shard verifies against the same system-wide pk_B.
        signing_key = KeyPair.generate(self.params)
        self.shard_map: ShardMap | None = None
        if self.topology.shards > 1:
            self.shard_map = ShardMap(
                list(addresses), points_per_shard=self.topology.points_per_shard
            )
        self.shards: list[Broker] = []
        for address in addresses:
            shard_store = None
            if self.store_dir is not None:
                shard_store = DurableStore(self.store_dir / address)
            shard = Broker(
                self.transport,
                judge=self.judge,
                params=self.params,
                clock=self.clock,
                address=address,
                renewal_period=renewal_period,
                store=shard_store,
                keypair=signing_key,
            )
            if self.shard_map is not None:
                shard.attach_federation(self.shard_map, policy=retry_policy)
            self.shards.append(shard)
        self.router: ShardRouter | None = None
        if self.shard_map is not None:
            self.router = ShardRouter(self.shards, self.shard_map)
        #: The unified broker surface (BrokerAPI): the single Broker when
        #: shards == 1, the ShardRouter facade otherwise.
        self.broker: BrokerAPI = self.router if self.router is not None else self.shards[0]
        self.broker_restarts = 0
        self.last_recovery: RecoveryResult | None = None
        #: Client-side degradation: with a breaker config, every peer's
        #: broker facade runs behind per-destination circuit breakers and
        #: queues payments aimed at a tripped shard instead of failing.
        self.breaker_config = breaker_config
        #: The active supervision policy (see :meth:`supervise_broker`).
        self.supervision: SupervisionPolicy | None = None
        self.sync_mode = sync_mode
        self.renewal_period = renewal_period
        self.peers: dict[str, Peer] = {}
        # PKI: every peer gets a CA-issued identity certificate (the
        # "public key certificate" of Section 4.2's purchase flow).
        from repro.pki import CertificateAuthority

        self.ca = CertificateAuthority(self.params)
        self.detection: DetectionService | None = None
        if enable_detection:
            # The §5.1 infrastructure is DHT-agnostic; pick the fabric.
            if dht_backend == "chord":
                fabric = ChordRing(self.transport, size=dht_size)
            elif dht_backend == "kademlia":
                from repro.dht.kademlia import KademliaNetwork

                fabric = KademliaNetwork(self.transport, size=dht_size)
            else:
                raise ValueError("dht_backend must be 'chord' or 'kademlia'")
            store = BindingStore(fabric, self.params, self.broker.public_key)
            hub = NotificationHub(store)
            self.detection = DetectionService(store, hub, self.params)
            for shard in self.shards:
                shard.detection = self.detection

    def add_peer(
        self,
        address: str,
        config: "PeerConfig | int | None" = None,
        **legacy,
    ) -> Peer:
        """Register a user: judge enrollment, broker account, transport node.

        Pass a :class:`PeerConfig` for per-peer options.
        ``PeerConfig(durable=True)`` (requires ``store_dir``) gives the peer
        a journaled wallet at ``<store_dir>/<address>`` so it can be killed
        and recovered with :meth:`restart_peer`.

        Deprecation shim: the pre-PR-7 keyword/positional form
        (``add_peer("alice", 10)`` / ``add_peer("alice", balance=10,
        durable=True)``) still works but warns; new code builds a
        :class:`PeerConfig`.
        """
        if isinstance(config, int):
            warnings.warn(
                "add_peer(address, balance) is deprecated; pass PeerConfig(balance=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = PeerConfig(balance=config)
        if legacy:
            unknown = set(legacy) - {"balance", "sync_mode", "durable"}
            if unknown:
                raise TypeError(f"add_peer got unexpected keyword(s) {sorted(unknown)}")
            warnings.warn(
                "add_peer(balance=..., sync_mode=..., durable=...) is deprecated; "
                "pass a PeerConfig instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if config is not None:
                raise TypeError("pass either a PeerConfig or legacy keywords, not both")
            config = PeerConfig(**legacy)
        config = config or PeerConfig()
        store = None
        if config.durable:
            if self.store_dir is None:
                raise ValueError("durable peers need the network built with store_dir")
            store = DurableStore(self.store_dir / address)
        member_key = self.judge.register(address)
        peer = Peer(
            self.transport,
            address=address,
            params=self.params,
            clock=self.clock,
            judge=self.judge,
            member_key=member_key,
            broker_address=self.shards[0].address,
            broker_key=self.broker.public_key,
            sync_mode=config.sync_mode if config.sync_mode is not None else self.sync_mode,
            renewal_period=self.renewal_period,
            retry_policy=self.retry_policy,
            store=store,
            shard_map=self.shard_map,
            breaker_config=self.breaker_config,
        )
        peer.detection = self.detection
        peer.certificate = self.ca.issue(address, peer.identity.public, self.clock.now())
        self.broker.open_account_from_certificate(peer.certificate, self.ca.public_key, config.balance)
        self.peers[address] = peer
        return peer

    def peer(self, address: str) -> Peer:
        """Look up a peer by address."""
        return self.peers[address]

    def advance(self, seconds: float) -> float:
        """Move simulated time forward (and run one supervision round).

        With a :class:`~repro.core.supervision.LeaseGatedSupervision`
        attached, each advance emits the heartbeats that came due and runs
        the detector/lease failover check — time moving is what lets a dead
        shard be noticed.
        """
        now = self.clock.advance(seconds)
        if self.supervision is not None:
            self.supervision.tick(now)
        return now

    def drain_queued_payments(self) -> int:
        """Drain every peer's queued payments (post-recovery); returns count."""
        return sum(peer.drain_payment_queue() for peer in self.peers.values())

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Install (or remove, with ``None``) a fault plan on the fabric."""
        self.transport.install_faults(plan)

    # -- durability / crash-recovery ---------------------------------------

    def _shard_at(self, shard: int | None) -> Broker:
        """Resolve a shard index (``None`` means the sole shard)."""
        if shard is None:
            if len(self.shards) > 1:
                raise ValueError("federated network: pass an explicit shard index")
            return self.shards[0]
        return self.shards[shard]

    def arm_crash_points(self, plan: CrashPointPlan | None, shard: int | None = None) -> None:
        """Attach a crash-point plan to a broker shard's store.

        Arm *after* setup traffic so crash-point indices enumerate
        steady-state fsync boundaries (the chaos sweep relies on a stable
        numbering across runs with the same seed).  ``shard`` selects the
        federation member to arm (omit for a standalone broker).
        """
        target = self._shard_at(shard)
        if target.store is None:
            raise ValueError("the network was not built with store_dir")
        target.store.crash_points = plan

    def snapshot_broker(self, shard: int | None = None) -> int:
        """Snapshot a broker shard into its store and compact the journal."""
        from repro.core.persistence import save_broker_snapshot

        target = self._shard_at(shard)
        if target.store is None:
            raise ValueError("the network was not built with store_dir")
        return save_broker_snapshot(target, target.store)

    def supervise_broker(self, policy: SupervisionPolicy | None = None) -> SupervisionPolicy:
        """Attach a shard-supervision policy (default: legacy crash hooks).

        With no argument this preserves the historical behavior —
        :class:`~repro.core.supervision.CrashHookSupervision` registers
        transport crash handlers that restart a dying shard *before* the
        in-flight sender sees ``ReplyLost``, so the sender's retry (same
        idempotency key) lands on the recovered shard and is deduplicated
        against the journal-refilled replay cache.

        Pass a :class:`~repro.core.supervision.LeaseGatedSupervision` for
        the realistic story: no transport magic, shard death is noticed by
        heartbeat silence (phi-accrual detector) and repaired only after
        the dead shard's lease lapses.  Returns the attached policy.
        """
        if self.supervision is not None:
            self.supervision.detach()
        self.supervision = policy if policy is not None else CrashHookSupervision()
        self.supervision.attach(self)
        return self.supervision

    def kill_shard(self, index: int) -> None:
        """Take one broker shard off the network, journal intact.

        Models abrupt process death: in-flight and future callers see
        ``NodeOffline`` (fail-fast; churn is protocol-visible), heartbeats
        stop, and only a supervision policy — or an explicit
        :meth:`restart_shard` — brings the shard back.
        """
        self.shards[index].go_offline()

    def restart_broker(self) -> RecoveryResult:
        """Kill the standalone broker and recover it from disk (1-shard form)."""
        if len(self.shards) > 1:
            raise ValueError("federated network: use restart_shard(index)")
        return self.restart_shard(0)

    def restart_shard(self, index: int) -> RecoveryResult:
        """Kill one broker shard and recover a new instance from its journal.

        The armed crash-point plan is detached during recovery (recovery's
        own journal repair must not re-crash) and re-attached — minus the
        already-fired point — afterwards.  The recovered shard rejoins the
        federation (same shard map, same retry policy) and replaces the old
        instance in the router, so peers' routed calls hit it seamlessly.
        """
        shard = self.shards[index]
        store = shard.store
        if store is None:
            raise ValueError("the network was not built with store_dir")
        plan, store.crash_points = store.crash_points, None
        detection = shard.detection
        self.transport.unregister(shard.address)
        result = RecoveryManager(store).recover_broker(
            self.transport,
            judge=self.judge,
            params=self.params,
            clock=self.clock,
            renewal_period=self.renewal_period,
            address=shard.address,
        )
        recovered = result.entity
        recovered.detection = detection
        if self.shard_map is not None:
            recovered.attach_federation(self.shard_map, policy=self.retry_policy)
        store.crash_points = plan
        self.shards[index] = recovered
        if self.router is not None:
            self.router.shards[index] = recovered
            self.router._by_address[recovered.address] = recovered
        else:
            self.broker = recovered
        self.broker_restarts += 1
        self.last_recovery = result
        return result

    def complete_handoffs(self) -> int:
        """Re-drive cross-shard handoffs orphaned by crashes; returns count."""
        return self.broker.complete_pending_handoffs()

    def restart_peer(self, address: str) -> RecoveryResult:
        """Kill a durable peer and recover it from its journaled wallet."""
        peer = self.peers[address]
        if peer.store is None:
            raise ValueError(f"peer {address!r} is not durable")
        store = peer.store
        certificate = getattr(peer, "certificate", None)
        detection = peer.detection
        self.transport.unregister(address)
        result = RecoveryManager(store).recover_peer(
            self.transport,
            params=self.params,
            clock=self.clock,
            judge=self.judge,
            broker_address=self.broker.address,
            broker_key=self.broker.public_key,
            sync_mode=self.sync_mode,
            renewal_period=self.renewal_period,
            retry_policy=self.retry_policy,
            shard_map=self.shard_map,
            breaker_config=self.breaker_config,
        )
        recovered = result.entity
        recovered.detection = detection
        if certificate is not None:
            recovered.certificate = certificate
        self.peers[address] = recovered
        return result
