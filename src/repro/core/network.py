"""One-call assembly of a complete WhoPay deployment.

:class:`WhoPayNetwork` wires together everything a scenario needs — the
transport, clock, judge, broker, peers, and optionally the DHT-backed
real-time detection service — with sane defaults, so examples and tests can
say::

    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", balance=10)
    bob = net.add_peer("bob")
    coin = alice.purchase()
    alice.issue("bob", coin.coin_y)
"""

from __future__ import annotations

from pathlib import Path

from repro.core.broker import Broker
from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.detection import DetectionService
from repro.core.judge import Judge
from repro.core.peer import Peer
from repro.crypto.params import DlogParams, default_params
from repro.dht.binding_store import BindingStore
from repro.dht.chord import ChordRing
from repro.dht.notify import NotificationHub
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan, Transport
from repro.store.crashpoints import CrashPointPlan, SimulatedCrash
from repro.store.journal import DurableStore
from repro.store.recovery import RecoveryManager, RecoveryResult


class WhoPayNetwork:
    """A fully wired WhoPay system in one object."""

    def __init__(
        self,
        params: DlogParams | None = None,
        enable_detection: bool = False,
        dht_size: int = 8,
        dht_backend: str = "chord",
        sync_mode: str = "proactive",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy: RetryPolicy | None = None,
        store_dir: str | Path | None = None,
    ) -> None:
        self.params = params or default_params()
        self.transport = Transport()
        self.clock = Clock()
        # Partition windows in a FaultPlan are scheduled against this clock.
        self.transport.clock = self.clock
        self.retry_policy = retry_policy
        self.judge = Judge(self.params)
        # Durability: with a store_dir the broker journals every mutation
        # to <store_dir>/broker and can be killed/recovered mid-run.
        self.store_dir = None if store_dir is None else Path(store_dir)
        broker_store = None
        if self.store_dir is not None:
            broker_store = DurableStore(self.store_dir / "broker")
        self.broker = Broker(
            self.transport,
            judge=self.judge,
            params=self.params,
            clock=self.clock,
            renewal_period=renewal_period,
            store=broker_store,
        )
        self.broker_restarts = 0
        self.last_recovery: RecoveryResult | None = None
        self.sync_mode = sync_mode
        self.renewal_period = renewal_period
        self.peers: dict[str, Peer] = {}
        # PKI: every peer gets a CA-issued identity certificate (the
        # "public key certificate" of Section 4.2's purchase flow).
        from repro.pki import CertificateAuthority

        self.ca = CertificateAuthority(self.params)
        self.detection: DetectionService | None = None
        if enable_detection:
            # The §5.1 infrastructure is DHT-agnostic; pick the fabric.
            if dht_backend == "chord":
                fabric = ChordRing(self.transport, size=dht_size)
            elif dht_backend == "kademlia":
                from repro.dht.kademlia import KademliaNetwork

                fabric = KademliaNetwork(self.transport, size=dht_size)
            else:
                raise ValueError("dht_backend must be 'chord' or 'kademlia'")
            store = BindingStore(fabric, self.params, self.broker.public_key)
            hub = NotificationHub(store)
            self.detection = DetectionService(store, hub, self.params)
            self.broker.detection = self.detection

    def add_peer(
        self,
        address: str,
        balance: int = 0,
        sync_mode: str | None = None,
        durable: bool = False,
    ) -> Peer:
        """Register a user: judge enrollment, broker account, transport node.

        ``durable=True`` (requires ``store_dir``) gives the peer a journaled
        wallet at ``<store_dir>/<address>`` so it can be killed and recovered
        with :meth:`restart_peer`.
        """
        store = None
        if durable:
            if self.store_dir is None:
                raise ValueError("durable peers need the network built with store_dir")
            store = DurableStore(self.store_dir / address)
        member_key = self.judge.register(address)
        peer = Peer(
            self.transport,
            address=address,
            params=self.params,
            clock=self.clock,
            judge=self.judge,
            member_key=member_key,
            broker_address=self.broker.address,
            broker_key=self.broker.public_key,
            sync_mode=sync_mode if sync_mode is not None else self.sync_mode,
            renewal_period=self.renewal_period,
            retry_policy=self.retry_policy,
            store=store,
        )
        peer.detection = self.detection
        peer.certificate = self.ca.issue(address, peer.identity.public, self.clock.now())
        self.broker.open_account_from_certificate(peer.certificate, self.ca.public_key, balance)
        self.peers[address] = peer
        return peer

    def peer(self, address: str) -> Peer:
        """Look up a peer by address."""
        return self.peers[address]

    def advance(self, seconds: float) -> float:
        """Move simulated time forward."""
        return self.clock.advance(seconds)

    def install_faults(self, plan: FaultPlan | None) -> None:
        """Install (or remove, with ``None``) a fault plan on the fabric."""
        self.transport.install_faults(plan)

    # -- durability / crash-recovery ---------------------------------------

    def arm_crash_points(self, plan: CrashPointPlan | None) -> None:
        """Attach a crash-point plan to the broker's store.

        Arm *after* setup traffic so crash-point indices enumerate
        steady-state fsync boundaries (the chaos sweep relies on a stable
        numbering across runs with the same seed).
        """
        if self.broker.store is None:
            raise ValueError("the network was not built with store_dir")
        self.broker.store.crash_points = plan

    def snapshot_broker(self) -> int:
        """Snapshot the broker into its store and compact the journal."""
        from repro.core.persistence import save_broker_snapshot

        if self.broker.store is None:
            raise ValueError("the network was not built with store_dir")
        return save_broker_snapshot(self.broker, self.broker.store)

    def supervise_broker(self) -> None:
        """Auto-restart the broker when a crash point kills it mid-request.

        The transport runs the restart *before* the in-flight sender sees
        ``ReplyLost``, so the sender's retry — carrying the same idempotency
        key — lands on the recovered broker and is deduplicated against the
        journal-refilled replay cache.
        """

        def on_crash(_crash: SimulatedCrash) -> None:
            self.restart_broker()

        self.transport.set_crash_handler(self.broker.address, on_crash)

    def restart_broker(self) -> RecoveryResult:
        """Kill the current broker instance and recover a new one from disk.

        The armed crash-point plan is detached during recovery (recovery's
        own journal repair must not re-crash) and re-attached — minus the
        already-fired point — afterwards.
        """
        store = self.broker.store
        if store is None:
            raise ValueError("the network was not built with store_dir")
        plan, store.crash_points = store.crash_points, None
        detection = self.broker.detection
        self.transport.unregister(self.broker.address)
        result = RecoveryManager(store).recover_broker(
            self.transport,
            judge=self.judge,
            params=self.params,
            clock=self.clock,
            renewal_period=self.renewal_period,
            address=self.broker.address,
        )
        self.broker = result.entity
        self.broker.detection = detection
        store.crash_points = plan
        self.broker_restarts += 1
        self.last_recovery = result
        return result

    def restart_peer(self, address: str) -> RecoveryResult:
        """Kill a durable peer and recover it from its journaled wallet."""
        peer = self.peers[address]
        if peer.store is None:
            raise ValueError(f"peer {address!r} is not durable")
        store = peer.store
        certificate = getattr(peer, "certificate", None)
        detection = peer.detection
        self.transport.unregister(address)
        result = RecoveryManager(store).recover_peer(
            self.transport,
            params=self.params,
            clock=self.clock,
            judge=self.judge,
            broker_address=self.broker.address,
            broker_key=self.broker.public_key,
            sync_mode=self.sync_mode,
            renewal_period=self.renewal_period,
            retry_policy=self.retry_policy,
        )
        recovered = result.entity
        recovered.detection = detection
        if certificate is not None:
            recovered.certificate = certificate
        self.peers[address] = recovered
        return result
