"""Coin shops (paper Section 5.2, approach 2).

    "Coin shops purchase coins from the broker, and peers purchase coins,
    using the issue procedure, from the coin shops.  …  Coin shops do not
    care about anonymity; they are in this business for profit, e.g., by
    charging a small fee for each coin issued.  Peers do not own, and hence
    never issue coins.  Peers spend coins only using the transfer procedure,
    which is anonymous."

A :class:`CoinShop` is a peer specialization that keeps a stock of unissued
coins, sells them through the ordinary issue protocol (plus a fee), and then
earns its keep by serving the transfers/renewals of the coins it issued —
i.e., it deliberately concentrates the coin-owner role onto highly available
commercial nodes, which is also the paper's "super peer" conjecture from the
scaling discussion in Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coin import CoinBinding
from repro.core.errors import InsufficientFunds, ProtocolError
from repro.core.peer import Peer


@dataclass
class SaleRecord:
    """One coin sale: which coin, to whom (address only), at what fee."""

    coin_y: int
    customer: str
    price: int
    fee: int


class CoinShop(Peer):
    """A commercial coin issuer.

    The shop's fee accounting is deliberately out-of-band (a real deployment
    would settle fees through WhoPay itself or a subscription); what matters
    for the anonymity argument is the *protocol* shape: customers acquire
    coins via issue-from-shop and afterwards spend exclusively by transfer.
    """

    def __init__(self, *args, fee: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fee = fee
        self.sales: list[SaleRecord] = []
        self.revenue = 0

    # -- stocking ----------------------------------------------------------

    def restock(self, count: int, value: int = 1) -> int:
        """Purchase ``count`` fresh coins from the broker to sell later."""
        for _ in range(count):
            self.purchase(value=value)
        return len(self.spendable_owned())

    def stock_size(self) -> int:
        """Unissued coins available for sale."""
        return len(self.spendable_owned())

    # -- selling ----------------------------------------------------------

    def sell(self, customer: str, value: int = 1) -> CoinBinding:
        """Issue one stocked coin of ``value`` to ``customer``.

        Restocks on demand if the shelf is empty.  Returns the issue binding
        (the customer's proof of holdership).
        """
        coin_y = None
        for candidate in self.spendable_owned():
            if self.owned[candidate].coin.value == value:
                coin_y = candidate
                break
        if coin_y is None:
            state = self.purchase(value=value)
            coin_y = state.coin_y
        binding = self.issue(customer, coin_y)
        self.sales.append(
            SaleRecord(coin_y=coin_y, customer=customer, price=value, fee=self.fee)
        )
        self.revenue += self.fee
        return binding


def buy_coin_from_shop(customer: Peer, shop: CoinShop, value: int = 1) -> int:
    """Customer-side purchase: ask the shop to issue a coin; returns coin_y.

    After this call the customer *holds* the coin (it appears in its wallet)
    but does not own it — exactly the state from which every subsequent
    spend is an anonymous transfer.
    """
    before = set(customer.wallet)
    shop.sell(customer.address, value=value)
    added = set(customer.wallet) - before
    if len(added) != 1:
        raise ProtocolError("shop sale did not deliver exactly one coin")
    return added.pop()
