"""Figure 2 — broker load, Policy I + proactive sync.

Paper shapes (Section 6.2): purchases increase with availability; downtime
transfers and downtime renewals first increase then decrease (two competing
forces); synchronizations decrease monotonically (one per join event, and
joins get rarer as sessions lengthen).  Deposits do not appear (policy I
never deposits).
"""

from repro.analysis.series import is_decreasing, is_increasing, rises_then_falls
from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of


def test_fig2_broker_load_policy1_proactive(benchmark, scale_note):
    rows = rows_of(benchmark.pedantic(availability_sweep, args=("I", "proactive"), rounds=1, iterations=1))
    mu = [r["mu_hours"] for r in rows]
    series = {
        "purchases": [r["broker_purchase"] for r in rows],
        "downtime_transfers": [r["broker_downtime_transfer"] for r in rows],
        "downtime_renewals": [r["broker_downtime_renewal"] for r in rows],
        "syncs": [r["broker_sync"] for r in rows],
        "deposits": [r["broker_deposit"] for r in rows],
    }
    emit(
        "fig2_broker_load_pro",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 2: Broker Load, Policy I + Proactive Sync — {scale_note}",
        ),
    )

    assert is_increasing(series["purchases"], tolerance=0.10), series["purchases"]
    assert rises_then_falls(series["downtime_transfers"], tolerance=0.10), series["downtime_transfers"]
    assert rises_then_falls(series["downtime_renewals"], tolerance=0.10), series["downtime_renewals"]
    assert is_decreasing(series["syncs"], tolerance=0.05), series["syncs"]
    assert all(v == 0 for v in series["deposits"])  # policy I never deposits
