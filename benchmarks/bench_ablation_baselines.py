"""Ablation — WhoPay vs PPay vs fully-centralized transfer.

The paper's motivating comparison (Sections 1, 4.3, 7): the same payment
workload served by

* **WhoPay** — owner-mediated transfers, broker only for purchase / deposit
  / downtime;
* **PPay** — identical routing, no group signatures (cheaper peers, zero
  anonymity);
* **centralized** (Burk–Pfitzmann / Vo–Hohenberger) — every transfer is a
  broker round trip.

Expected shape: WhoPay and PPay give the broker a few percent of total load;
the centralized design concentrates a large share on the broker, growing
with availability (more payments → proportionally more broker work), while
WhoPay's broker share *shrinks* with availability (fewer downtime ops).
"""

from repro.analysis.tables import format_series_table
from repro.sim.baseline_sim import centralized_load, ppay_load, whopay_load
from repro.sim.config import setup_a_configs
from repro.sim.policies import POLICY_I
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit


def run_comparison():
    configs = setup_a_configs(policy=POLICY_I, sync_mode="lazy", small=not FULL_SCALE)
    rows = []
    for config in configs:
        metrics = build_simulation(config).run().metrics
        rows.append(
            {
                "mu": config.mean_online / 3600.0,
                "whopay": whopay_load(metrics).broker_cpu_share,
                "ppay": ppay_load(metrics).broker_cpu_share,
                "centralized": centralized_load(metrics).broker_cpu_share,
            }
        )
    return rows


def test_ablation_baseline_broker_share(benchmark, scale_note):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    mu = [r["mu"] for r in rows]
    series = {
        name: [round(r[name], 4) for r in rows]
        for name in ("whopay", "ppay", "centralized")
    }
    emit(
        "ablation_baselines",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Ablation: Broker CPU share — WhoPay vs PPay vs centralized — {scale_note}",
        ),
    )

    for i in range(len(mu)):
        # Both P2P designs beat the centralized one at every point, and
        # decisively (3x+) once availability leaves the degenerate corner
        # where nearly everything is a downtime operation anyway.
        assert series["centralized"][i] > series["whopay"][i], mu[i]
        assert series["centralized"][i] > series["ppay"][i], mu[i]
        if mu[i] >= 1.0:
            assert series["centralized"][i] > 3 * series["whopay"][i], mu[i]
            assert series["centralized"][i] > 3 * series["ppay"][i], mu[i]
        # WhoPay's anonymity costs peers extra group-signature work, which
        # *lowers* the broker's relative share vs PPay slightly; the two
        # stay in the same few-percent band.
        assert abs(series["whopay"][i] - series["ppay"][i]) < 0.06
    # Centralized share grows (or stays high) with availability; WhoPay's falls.
    assert series["whopay"][-1] < series["whopay"][0]
    assert series["centralized"][-1] > 0.25
