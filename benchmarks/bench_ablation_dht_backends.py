"""Ablation — Chord vs Kademlia as the §5.1 binding-store fabric.

The paper lists CAN/Chord/Pastry/Tapestry interchangeably; we built two
(Chord and Kademlia) behind one interface.  This bench runs the identical
publish/fetch workload over both and compares routing cost (transport
messages per operation) and correctness, on the real stacks.
"""

from repro.analysis.tables import format_table
from repro.crypto.dsa import dsa_generate, dsa_sign
from repro.crypto.params import PARAMS_TEST_512
from repro.dht.binding_store import BindingRecord, BindingStore
from repro.dht.chord import ChordRing
from repro.dht.kademlia import KademliaNetwork
from repro.messages.codec import encode
from repro.net.transport import Transport

from _common import emit

NODES = 12
COINS = 15
UPDATES_PER_COIN = 4


def run_backend(name: str) -> dict:
    transport = Transport()
    fabric = (
        ChordRing(transport, size=NODES)
        if name == "chord"
        else KademliaNetwork(transport, size=NODES)
    )
    broker = dsa_generate(PARAMS_TEST_512)
    store = BindingStore(fabric, PARAMS_TEST_512, broker.public)
    coins = [dsa_generate(PARAMS_TEST_512) for _ in range(COINS)]

    transport.reset_counters()
    operations = 0
    for coin in coins:
        for seq in range(1, UPDATES_PER_COIN + 1):
            payload = encode(
                {"coin_y": coin.public.y, "holder_y": seq, "seq": seq, "exp": 999}
            )
            sig = dsa_sign(coin, payload)
            store.publish(
                BindingRecord(
                    payload=payload, signer_y=coin.public.y,
                    sig_r=sig.r, sig_s=sig.s, via_broker=False,
                )
            )
            operations += 1
    publish_msgs = transport.total_messages / operations

    transport.reset_counters()
    hits = 0
    for coin in coins:
        record = store.fetch(coin.public.y)
        if record is not None and record.sequence() == UPDATES_PER_COIN:
            hits += 1
    fetch_msgs = transport.total_messages / COINS
    return {
        "backend": name,
        "publish_msgs": round(publish_msgs, 1),
        "fetch_msgs": round(fetch_msgs, 1),
        "fetch_hits": hits,
    }


def run_both():
    return [run_backend("chord"), run_backend("kademlia")]


def test_ablation_dht_backends(benchmark):
    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_dht_backends",
        format_table(
            rows,
            ["backend", "publish_msgs", "fetch_msgs", "fetch_hits"],
            title=f"Ablation: binding-store routing cost over Chord vs Kademlia ({NODES} nodes)",
        ),
    )

    for row in rows:
        # Both fabrics serve every read with the latest write.
        assert row["fetch_hits"] == COINS, row
        # Routing stays logarithmic-ish: far below contacting every node.
        assert row["publish_msgs"] < 6 * NODES, row
        assert row["fetch_msgs"] < 6 * NODES, row
