"""Recovery-cost benchmark: journal replay time vs journal length.

Not a paper artifact — engineering instrumentation for the durability layer
(DESIGN.md's crash-consistency section).  Measures how long
:class:`repro.store.recovery.RecoveryManager` takes to rebuild a broker
whose journal holds N mint records (replay applies each mutation, refills
the replay cache, batch-re-verifies every signature, and audits the
result), and how much a snapshot+compaction shortens it.

Two entry points:

* ``pytest benchmarks/bench_recovery.py --benchmark-only`` — pytest-benchmark
  timing of one mid-sized recovery;
* ``python benchmarks/bench_recovery.py [--quick]`` — the replay-length
  sweep; prints the table and writes machine-readable rows to
  ``benchmarks/out/BENCH_recovery.json``.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from _common import OUT_DIR

from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512

SIZES = (8, 32, 128)
QUICK_SIZES = (4, 16)


def _build_net(store_root, n_records: int) -> WhoPayNetwork:
    """A broker whose journal holds ``n_records`` mint records."""
    net = WhoPayNetwork(params=PARAMS_TEST_512, store_dir=store_root)
    peer = net.add_peer("buyer", PeerConfig(balance=n_records))
    for _ in range(n_records):
        peer.purchase()
    return net

def _timed_restart(net: WhoPayNetwork):
    start = time.perf_counter()
    result = net.restart_broker()
    return time.perf_counter() - start, result


def measure(sizes=SIZES) -> dict:
    rows = []
    for n_records in sizes:
        with tempfile.TemporaryDirectory() as root:
            net = _build_net(Path(root), n_records)
            elapsed, result = _timed_restart(net)
            assert result.audit is not None and result.audit.ok
            # +2 bookkeeping records: broker_init and open_account.
            rows.append(
                {
                    "journal_records": result.records_replayed,
                    "recovery_seconds": elapsed,
                    "records_per_second": result.records_replayed / elapsed,
                    "audit_ok": result.audit.ok,
                }
            )
    # Snapshot + compaction at the largest size: replay drops to zero.
    with tempfile.TemporaryDirectory() as root:
        net = _build_net(Path(root), sizes[-1])
        net.snapshot_broker()
        elapsed, result = _timed_restart(net)
        assert result.snapshot_loaded and result.records_replayed == 0
        snapshot_row = {
            "journal_records_covered": sizes[-1],
            "records_replayed": result.records_replayed,
            "recovery_seconds": elapsed,
        }
    return {
        "params": "512-bit test group",
        "workload": "N coin purchases (one mint record each)",
        "rows": rows,
        "snapshot_recovery": snapshot_row,
    }


def test_bench_broker_recovery(benchmark, tmp_path):
    net = _build_net(tmp_path, 32)

    def cycle():
        return net.restart_broker()

    result = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert result.audit is not None and result.audit.ok


def main(argv: list[str]) -> int:
    sizes = QUICK_SIZES if "--quick" in argv else SIZES
    report = measure(sizes)
    print(f"{'records':>8}  {'seconds':>9}  {'records/s':>10}")
    for row in report["rows"]:
        print(
            f"{row['journal_records']:>8}  {row['recovery_seconds']:>9.4f}  "
            f"{row['records_per_second']:>10.1f}"
        )
    snap = report["snapshot_recovery"]
    print(
        f"snapshot over {snap['journal_records_covered']} records: "
        f"{snap['recovery_seconds']:.4f}s (0 replayed)"
    )
    # Shape check: replay work grows with journal length.
    times = [row["recovery_seconds"] for row in report["rows"]]
    assert times[-1] > times[0], "recovery time should grow with the journal"
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "BENCH_recovery.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
