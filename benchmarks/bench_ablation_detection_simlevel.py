"""Ablation — real-time detection priced at evaluation scale.

`bench_ablation_dht_detection.py` measures the §5.1 extension on the real
protocol stack (tens of payments).  This bench prices it at the paper's
evaluation scale with the operation-level model: one DHT publish per binding
update, one verify-before-accept read per payment, across the availability
sweep.

Expected: broker load untouched (the DHT carries the machinery — the
paper's explicit design goal for the extension), peer communication load up
by a roughly constant factor, rising slightly with availability (more
payments → more publishes/reads per peer).
"""

from dataclasses import replace

from repro.analysis.tables import format_series_table
from repro.sim.config import setup_a_configs
from repro.sim.policies import POLICY_I
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit


def run_comparison():
    rows = []
    for config in setup_a_configs(policy=POLICY_I, sync_mode="lazy", small=not FULL_SCALE):
        off = build_simulation(config).run().metrics
        on = build_simulation(replace(config, detection=True)).run().metrics
        rows.append(
            {
                "mu": config.mean_online / 3600.0,
                "broker_cpu_off": off.broker_cpu_load(),
                "broker_cpu_on": on.broker_cpu_load(),
                "peer_comm_off": off.peer_comm_load_total(),
                "peer_comm_on": on.peer_comm_load_total(),
                "publishes": on.ops["dht_publish"],
                "reads": on.ops["dht_read"],
            }
        )
    return rows


def test_ablation_detection_at_scale(benchmark, scale_note):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    mu = [r["mu"] for r in rows]
    series = {
        "peer_comm(off)": [r["peer_comm_off"] for r in rows],
        "peer_comm(on)": [r["peer_comm_on"] for r in rows],
        "dht_publishes": [r["publishes"] for r in rows],
        "dht_reads": [r["reads"] for r in rows],
    }
    emit(
        "ablation_detection_simlevel",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Ablation: Section 5.1 detection overhead at evaluation scale — {scale_note}",
        ),
    )

    for r in rows:
        # The broker is untouched: the whole point of publishing to a DHT
        # instead of "a central trusted server" (Section 5.1).
        assert r["broker_cpu_on"] == r["broker_cpu_off"], r["mu"]
        # Peers pay a bounded communication premium: just over 2x at the
        # low-availability corner (few payments, but every renewal still
        # publishes), well under 2x through the operating region.
        assert r["peer_comm_off"] < r["peer_comm_on"] < 2.5 * r["peer_comm_off"], r["mu"]
        if r["mu"] >= 1.0:
            assert r["peer_comm_on"] < 2 * r["peer_comm_off"], r["mu"]
    # Publishes track binding updates, which grow with availability.
    assert series["dht_publishes"][-1] > series["dht_publishes"][0]
