"""Table 1's three downtime families (ν ∈ {1, 2, 4} hours).

The paper ran short- (ν = 1 h), median- (2 h) and long-downtime (4 h)
simulations and reported: "the results for the short downtime simulation,
median downtime simulation, and long downtime simulation are pretty similar
to each other, we will only show the results for the median downtime
simulation."  This bench runs all three families and verifies that claim:
the qualitative shapes (purchases rising, downtime ops unimodal, syncs
falling) hold in every family, and the broker-share curves agree once
plotted against *availability* rather than µ.
"""

from repro.analysis.series import is_decreasing, is_increasing, rises_then_falls
from repro.analysis.tables import format_series_table
from repro.sim.policies import POLICY_I
from repro.sim.runner import run_availability_sweep

from _common import FULL_SCALE, emit

FAMILIES = (1.0, 2.0, 4.0)


def run_families():
    return {
        nu: run_availability_sweep(
            POLICY_I, "proactive", small=not FULL_SCALE, mean_offline_hours=nu
        )
        for nu in FAMILIES
    }


def test_downtime_families_similar(benchmark, scale_note):
    data = benchmark.pedantic(run_families, rounds=1, iterations=1)
    mu = [r["mu_hours"] for r in data[2.0]]
    series = {
        f"share(nu={nu:g}h)": [round(r["broker_cpu_share"], 4) for r in rows]
        for nu, rows in data.items()
    }
    emit(
        "downtime_families",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Table 1 families: broker CPU share for nu = 1/2/4 h — {scale_note}",
        ),
    )

    def unimodal(values, nu):
        # The downtime curves crest where availability is moderate.  For
        # the short-downtime family the reduced sweep's first point
        # (µ = 0.25 h, α = 0.2) already sits at/past that crest, so the
        # peak may land on the left edge — accept a monotone fall there,
        # but still require a strictly interior peak for ν = 2/4 h.
        if nu == 1.0 and max(range(len(values)), key=values.__getitem__) == 0:
            return is_decreasing(values, tolerance=0.10)
        return rises_then_falls(values, tolerance=0.10)

    for nu, rows in data.items():
        purchases = [r["broker_purchase"] for r in rows]
        dtransfers = [r["broker_downtime_transfer"] for r in rows]
        drenewals = [r["broker_downtime_renewal"] for r in rows]
        syncs = [r["broker_sync"] for r in rows]
        assert is_increasing(purchases, tolerance=0.10), (nu, purchases)
        assert unimodal(dtransfers, nu), (nu, dtransfers)
        assert unimodal(drenewals, nu), (nu, drenewals)
        assert is_decreasing(syncs, tolerance=0.05), (nu, syncs)

    # "Pretty similar": at comparable availability the families' broker
    # shares agree within a factor of two.  ν = 1 h at µ = 1 h gives
    # α = 0.5, matching ν = 2 h at µ = 2 h and ν = 4 h at µ = 4 h.
    comparable = {
        1.0: next(r for r in data[1.0] if r["mu_hours"] == 1.0),
        2.0: next(r for r in data[2.0] if r["mu_hours"] == 2.0),
        4.0: next(r for r in data[4.0] if r["mu_hours"] == 4.0),
    }
    shares = [row["broker_cpu_share"] for row in comparable.values()]
    assert max(shares) <= 2.0 * min(shares), shares
