"""Figure 3 — broker load, Policy I + lazy sync.

Same shapes as Figure 2 minus synchronizations, which lazy sync eliminates
entirely ("the broker … handle[s] purchases, downtime transfers, and
downtime renewals, but no synchronizations").
"""

from repro.analysis.series import is_increasing, rises_then_falls
from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of


def test_fig3_broker_load_policy1_lazy(benchmark, scale_note):
    rows = rows_of(benchmark.pedantic(availability_sweep, args=("I", "lazy"), rounds=1, iterations=1))
    mu = [r["mu_hours"] for r in rows]
    series = {
        "purchases": [r["broker_purchase"] for r in rows],
        "downtime_transfers": [r["broker_downtime_transfer"] for r in rows],
        "downtime_renewals": [r["broker_downtime_renewal"] for r in rows],
        "syncs": [r["broker_sync"] for r in rows],
    }
    emit(
        "fig3_broker_load_lazy",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 3: Broker Load, Policy I + Lazy Sync — {scale_note}",
        ),
    )

    assert all(v == 0 for v in series["syncs"])  # lazy sync: no sync ops at all
    assert is_increasing(series["purchases"], tolerance=0.10)
    assert rises_then_falls(series["downtime_transfers"], tolerance=0.10)
    assert rises_then_falls(series["downtime_renewals"], tolerance=0.10)
