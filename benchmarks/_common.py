"""Shared helpers for the figure/table benchmarks (see conftest.py).

Every artifact of the paper's evaluation (Tables 1–3, Figures 2–11) has one
bench module here.  Conventions:

* Each bench runs under ``pytest benchmarks/ --benchmark-only``; the timed
  body is the sweep (or crypto loop) that produces the artifact's data.
* Sweeps are cached per (policy, sync, small) so figures sharing a
  configuration (e.g. Figures 2/4 both use Policy I + proactive) pay once.
* Default scale is the reduced preset (150 peers, 5 simulated days — every
  ratio the analysis depends on preserved; see ``repro.sim.config``).  Set
  ``WHOPAY_FULL=1`` for the paper-scale 1000-peer, 10-day runs.
* Each bench prints the series it reproduces (the same rows the paper's
  figure plots) and writes it to ``benchmarks/out/<artifact>.txt``.
* Assertions check the *shape* of the series — monotonicity, peaks,
  orderings — per the reproduction criteria in DESIGN.md §2.
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache
from pathlib import Path

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.policies import policy_by_name
from repro.sim.runner import run_availability_sweep, run_scaling_sweep

FULL_SCALE = os.environ.get("WHOPAY_FULL", "") == "1"
#: Opt-in process-pool fan-out of sweep points (``WHOPAY_PARALLEL=1``).
#: Rows are bit-identical to the sequential runner's (each point carries its
#: own seed); only wall-clock changes, so cached artifacts stay comparable.
PARALLEL = os.environ.get("WHOPAY_PARALLEL", "") == "1"
OUT_DIR = Path(__file__).parent / "out"


@lru_cache(maxsize=None)
def availability_sweep(policy_name: str, sync_mode: str) -> tuple:
    """Cached Setup-A sweep for one configuration."""
    rows = run_availability_sweep(
        policy_by_name(policy_name), sync_mode, small=not FULL_SCALE, parallel=PARALLEL
    )
    return tuple(tuple(sorted(row.items())) for row in rows)


@lru_cache(maxsize=None)
def scaling_sweep(policy_name: str, sync_mode: str) -> tuple:
    """Cached Setup-B sweep for one configuration."""
    rows = run_scaling_sweep(
        policy_by_name(policy_name), sync_mode, small=not FULL_SCALE, parallel=PARALLEL
    )
    return tuple(tuple(sorted(row.items())) for row in rows)


def rows_of(frozen: tuple) -> list[dict]:
    """Thaw a cached sweep back into row dicts."""
    return [dict(items) for items in frozen]


def emit(artifact: str, text: str) -> None:
    """Print a reproduced series and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{artifact}.txt").write_text(text + "\n")


