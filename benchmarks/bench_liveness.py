"""Failure-detection tradeoff curves for the self-healing federation.

The PR 9 acceptance artifact.  A 3-shard federation runs under
:class:`LeaseGatedSupervision` on pure virtual time; for each heartbeat
interval the phi threshold is swept and two quantities are measured:

* **detection latency** — a shard is killed outright (no faults) and the
  virtual time from its last heartbeat to the detector-driven restart is
  recorded.  Grows with the threshold (and with the interval: fewer
  beats per second means coarser evidence of silence).
* **false-positive pressure** — nobody dies, but the fault plan drops a
  third of all heartbeat requests.  ``dead_verdicts`` counts detector
  transitions to DEAD on a *live* shard; ``spurious_restarts`` counts
  the (far rarer) verdicts that also outlived the shard's lease and
  actually triggered a restart — the lease gate is the second line of
  defense the curve makes visible.

Low thresholds detect fast but cry wolf under loss; high thresholds are
quiet but slow.  The curves quantify that tradeoff so a deployment can
pick its operating point; the chaos suite pins the window the default
configuration guarantees.

Entry points:

* ``python benchmarks/bench_liveness.py`` — full sweep; writes
  ``benchmarks/out/BENCH_liveness.json``.
* ``--quick`` — CI smoke: fewer thresholds/seeds, shorter horizon,
  writes ``BENCH_liveness_quick.json``.

Everything runs on the virtual clock, so the artifact is deterministic
per seed regardless of host speed.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from _common import OUT_DIR

from repro.core.network import BrokerTopology, WhoPayNetwork
from repro.core.supervision import LeaseGatedSupervision
from repro.crypto.params import PARAMS_TEST_512
from repro.net.liveness import DEAD, LivenessConfig
from repro.net.transport import FaultPlan

SHARDS = 3
LEASE = 2.0
HEARTBEAT_LOSS = 0.35  # FP-run request loss: harsh enough to stress phi
INTERVALS = (0.25, 0.5, 1.0)
THRESHOLDS_FULL = (1.0, 2.0, 4.0, 6.0)
THRESHOLDS_QUICK = (1.0, 4.0, 6.0)
FP_SEEDS_FULL = (11, 12, 13)
FP_SEEDS_QUICK = (11,)
FP_HORIZON_FULL = 120.0  # virtual seconds of lossy, kill-free heartbeating
FP_HORIZON_QUICK = 60.0


def build_net(store_dir, config: LivenessConfig):
    net = WhoPayNetwork(
        params=PARAMS_TEST_512,
        store_dir=store_dir,
        topology=BrokerTopology(shards=SHARDS),
    )
    policy = net.supervise_broker(LeaseGatedSupervision(config))
    return net, policy


def measure_detection_latency(store_dir, config: LivenessConfig) -> float:
    """Kill one shard on a clean fabric; return silence-to-restart latency."""
    net, policy = build_net(store_dir, config)
    tick = config.heartbeat_interval
    for _ in range(8):  # warm the detector with real inter-arrival gaps
        net.advance(tick)
    net.kill_shard(1)
    budget = int((config.detection_window() + config.lease_duration) / tick) + 8
    for _ in range(budget):
        net.advance(tick)
        if policy.events:
            break
    assert policy.events, "kill was never detected"
    return policy.detection_latencies()[0]


def measure_false_positives(store_dir, config: LivenessConfig, seed: int, horizon: float):
    """Lossy heartbeats, no kills: count DEAD verdicts and spurious restarts."""
    net, policy = build_net(store_dir, config)
    net.install_faults(FaultPlan(seed=seed, request_loss=HEARTBEAT_LOSS))
    tick = config.heartbeat_interval
    addresses = [shard.address for shard in net.shards]
    was_dead = {address: False for address in addresses}
    dead_verdicts = 0
    restarts_seen = 0
    steps = int(horizon / tick)
    for _ in range(steps):
        now = net.advance(tick)
        # A restart consumes its DEAD verdict inside the tick (failover
        # resets the detector before we sample), so credit those first.
        for event in policy.events[restarts_seen:]:
            if not was_dead[event.address]:
                dead_verdicts += 1
            was_dead[event.address] = False
        restarts_seen = len(policy.events)
        for address in addresses:
            dead = policy.detector.state(address, now) == DEAD
            if dead and not was_dead[address]:
                dead_verdicts += 1
            was_dead[address] = dead
    return {
        "dead_verdicts": dead_verdicts,
        "spurious_restarts": len(policy.events),
        "beats_sent": policy.beats_sent,
        "beats_missed": policy.beats_missed,
    }


def run_sweep(quick: bool) -> dict:
    thresholds = THRESHOLDS_QUICK if quick else THRESHOLDS_FULL
    fp_seeds = FP_SEEDS_QUICK if quick else FP_SEEDS_FULL
    horizon = FP_HORIZON_QUICK if quick else FP_HORIZON_FULL
    curves = []
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        run = 0
        for interval in INTERVALS:
            points = []
            for threshold in thresholds:
                config = LivenessConfig(
                    heartbeat_interval=interval,
                    phi_threshold=threshold,
                    lease_duration=LEASE,
                )
                run += 1
                latency = measure_detection_latency(scratch / f"lat{run}", config)
                bound = max(config.detection_window(), LEASE) + 2 * interval
                assert 0.0 < latency <= bound, (interval, threshold, latency)
                fp = {"dead_verdicts": 0, "spurious_restarts": 0, "beats_sent": 0, "beats_missed": 0}
                for seed in fp_seeds:
                    run += 1
                    one = measure_false_positives(scratch / f"fp{run}", config, seed, horizon)
                    for key in fp:
                        fp[key] += one[key]
                minutes = len(fp_seeds) * horizon / 60.0
                points.append(
                    {
                        "phi_threshold": threshold,
                        "detection_window": round(config.detection_window(), 3),
                        "detection_latency": round(latency, 3),
                        "dead_verdicts_per_min": round(fp["dead_verdicts"] / minutes, 3),
                        "spurious_restarts_per_min": round(fp["spurious_restarts"] / minutes, 3),
                        "beats_sent": fp["beats_sent"],
                        "beats_missed": fp["beats_missed"],
                    }
                )
            # The tradeoff must actually trade: latency rises with the
            # threshold while false-positive pressure falls.
            latencies = [p["detection_latency"] for p in points]
            verdicts = [p["dead_verdicts_per_min"] for p in points]
            assert latencies == sorted(latencies), (interval, latencies)
            assert verdicts == sorted(verdicts, reverse=True), (interval, verdicts)
            curves.append({"heartbeat_interval": interval, "points": points})
    return {
        "artifact": "liveness detection-latency vs false-positive tradeoff",
        "quick": quick,
        "shards": SHARDS,
        "lease_duration": LEASE,
        "heartbeat_request_loss": HEARTBEAT_LOSS,
        "fp_horizon_virtual_s": horizon,
        "fp_seeds": list(fp_seeds),
        "curves": curves,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="artifact path (default: benchmarks/out/BENCH_liveness.json)",
    )
    args = parser.parse_args(argv)
    report = run_sweep(quick=args.quick)
    out_path = args.out
    if out_path is None:
        name = "BENCH_liveness_quick.json" if args.quick else "BENCH_liveness.json"
        out_path = OUT_DIR / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for curve in report["curves"]:
        print(f"interval={curve['heartbeat_interval']}s")
        for point in curve["points"]:
            print(
                f"  phi>={point['phi_threshold']:>4}: "
                f"latency={point['detection_latency']:>6.2f}s "
                f"window<={point['detection_window']:>6.2f}s "
                f"dead_verdicts/min={point['dead_verdicts_per_min']:>6.2f} "
                f"spurious_restarts/min={point['spurious_restarts_per_min']:>5.2f}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
