"""Microbenchmarks for every cryptographic primitive in the substrate.

Not a paper artifact — engineering instrumentation for the library itself.
Runs at the 512-bit test size so the whole suite stays fast; Table 2's bench
covers the paper-size 1024-bit DSA numbers.

Two entry points:

* ``pytest benchmarks/bench_crypto_ops.py --benchmark-only`` — pytest-benchmark
  timings for each primitive (including the roster-16 group operations and
  the batch verifier).
* ``python benchmarks/bench_crypto_ops.py [--quick]`` — compares the
  accelerated hot paths (fixed-base tables, multi-exp, batch verification;
  see DESIGN.md §1.1) against in-file replicas of the pre-acceleration
  implementations and writes machine-readable speedups to
  ``benchmarks/out/BENCH_crypto.json``.  ``--quick`` restricts to the
  512-bit group with fewer repetitions (the CI smoke configuration).
"""

import json
import statistics
import time

import pytest

from _common import OUT_DIR

from repro.crypto import fastexp, primitives
from repro.crypto.dsa import dsa_batch_verify, dsa_generate, dsa_sign, dsa_verify
from repro.crypto.elgamal import elgamal_decrypt, elgamal_encrypt, elgamal_generate
from repro.crypto.group_signature import GroupManager, _challenge_hash, group_sign, group_verify
from repro.crypto.hashchain import HashChain, verify_chain_link
from repro.crypto.params import PARAMS_1024_160, PARAMS_TEST_512
from repro.crypto.schnorr import schnorr_batch_verify, schnorr_prove, schnorr_verify
from repro.crypto.shamir import combine_shares, split_secret

P = PARAMS_TEST_512

#: Batch size for the batch-verification benches (a plausible sync/deposit
#: burst at the broker).
BATCH = 32


@pytest.fixture(scope="module")
def keypair():
    return dsa_generate(P)


@pytest.fixture(scope="module")
def group():
    manager = GroupManager(P)
    members = [manager.register(f"m{i}") for i in range(8)]
    return manager, members, manager.public_key()


@pytest.fixture(scope="module")
def group16():
    manager = GroupManager(P)
    members = [manager.register(f"m{i}") for i in range(16)]
    return manager, members, manager.public_key()


def test_bench_dsa_keygen(benchmark):
    benchmark(dsa_generate, P)


def test_bench_dsa_sign(benchmark, keypair):
    benchmark(dsa_sign, keypair, b"message")


def test_bench_dsa_verify(benchmark, keypair):
    signature = dsa_sign(keypair, b"message")
    assert benchmark(dsa_verify, keypair.public, b"message", signature)


def test_bench_dsa_batch_verify(benchmark, keypair):
    items = [
        (keypair.public, msg, dsa_sign(keypair, msg))
        for msg in (b"message-%d" % i for i in range(BATCH))
    ]
    assert benchmark(dsa_batch_verify, items)


def test_bench_schnorr_prove(benchmark, keypair):
    benchmark(schnorr_prove, keypair, b"context")


def test_bench_schnorr_verify(benchmark, keypair):
    proof = schnorr_prove(keypair, b"context")
    assert benchmark(schnorr_verify, keypair.public, proof, b"context")


def test_bench_schnorr_batch_verify(benchmark, keypair):
    items = [
        (keypair.public, schnorr_prove(keypair, ctx), ctx)
        for ctx in (b"context-%d" % i for i in range(BATCH))
    ]
    assert benchmark(schnorr_batch_verify, items)


def test_bench_elgamal_roundtrip(benchmark):
    key = elgamal_generate(P)
    element = pow(P.g, 12345, P.p)

    def roundtrip():
        return elgamal_decrypt(key, elgamal_encrypt(key.public, element))

    assert benchmark(roundtrip) == element


def test_bench_group_sign(benchmark, group):
    _manager, members, gpk = group
    benchmark(group_sign, gpk, members[0], b"message")


def test_bench_group_verify(benchmark, group):
    _manager, members, gpk = group
    signature = group_sign(gpk, members[0], b"message")
    assert benchmark(group_verify, gpk, b"message", signature)


def test_bench_group_sign_roster16(benchmark, group16):
    _manager, members, gpk = group16
    benchmark(group_sign, gpk, members[0], b"message")


def test_bench_group_verify_roster16(benchmark, group16):
    _manager, members, gpk = group16
    signature = group_sign(gpk, members[0], b"message")
    assert benchmark(group_verify, gpk, b"message", signature)


def test_bench_group_open(benchmark, group):
    manager, members, gpk = group
    signature = group_sign(gpk, members[3], b"message")
    assert benchmark(manager.open, signature) == "m3"


def test_bench_shamir_split_combine(benchmark):
    def roundtrip():
        shares = split_secret(123456789, n=5, k=3, modulus=P.q)
        return combine_shares(shares[:3], P.q)

    assert benchmark(roundtrip) == 123456789


def test_bench_hashchain_build(benchmark):
    benchmark(HashChain, 100)


def test_bench_hashchain_verify(benchmark):
    chain = HashChain(100)
    index, link = chain.pay(50)
    assert benchmark(verify_chain_link, chain.anchor, index, link)


# ---------------------------------------------------------------------------
# Accelerated vs pre-acceleration baselines (``__main__`` mode)
# ---------------------------------------------------------------------------
#
# The baselines below are line-for-line replicas of the implementations this
# repo shipped before the fastexp layer landed: plain ``pow`` everywhere, a
# full subgroup check per verification, and per-clause modular inversions in
# the group verifier.  They exist only to measure the acceleration honestly
# against the real before-state, not an artificial strawman.


def baseline_dsa_verify(public, message, signature) -> bool:
    """Pre-acceleration ``dsa_verify``: naked pows, uncached subgroup check."""
    params = public.params
    r, s = signature.r, signature.s
    if not (0 < r < params.q and 0 < s < params.q):
        return False
    if not (0 < public.y < params.p and pow(public.y, params.q, params.p) == 1):
        return False
    digest = primitives.hash_to_int(message, modulus=params.q)
    w = primitives.modinv(s, params.q)
    u1 = (digest * w) % params.q
    u2 = (r * w) % params.q
    v = (pow(params.g, u1, params.p) * pow(public.y, u2, params.p)) % params.p % params.q
    return v == r


def baseline_group_verify(gpk, message, signature) -> bool:
    """Pre-acceleration ``group_verify``: per-clause pows and inversions."""
    params = gpk.params
    p, q, g = params.p, params.q, params.g
    y = gpk.opening_key.y
    n = len(gpk.roster)
    if not (len(signature.challenges) == len(signature.responses_r) == len(signature.responses_x) == n):
        return False
    c1, c2 = signature.ciphertext.c1, signature.ciphertext.c2
    if not (0 < c1 < p and 0 < c2 < p):
        return False
    c1_inv = primitives.modinv(c1, p)
    c2_inv = primitives.modinv(c2, p)
    commitments = []
    for j, h_j in enumerate(gpk.roster):
        c_j = signature.challenges[j]
        s_r = signature.responses_r[j]
        s_x = signature.responses_x[j]
        if not (0 <= c_j < q and 0 <= s_r < q and 0 <= s_x < q):
            return False
        ratio_inv = (h_j * c2_inv) % p
        t1 = (pow(g, s_r, p) * pow(c1_inv, c_j, p)) % p
        t2 = (pow(y, s_r, p) * pow(ratio_inv, c_j, p)) % p
        t3 = (pow(g, s_x, p) * pow(primitives.modinv(h_j, p), c_j, p)) % p
        commitments.append((t1, t2, t3))
    total = _challenge_hash(gpk, signature.ciphertext, commitments, message)
    return sum(signature.challenges) % q == total


def _time_us(fn, repeat: int) -> float:
    """Median wall-clock time of ``fn()`` in microseconds."""
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e6)
    return statistics.median(samples)


def _compare(name, baseline, accelerated, repeat, results) -> None:
    """Time both implementations and record the speedup."""
    assert baseline() and accelerated(), f"{name}: implementations disagree"
    base_us = _time_us(baseline, repeat)
    accel_us = _time_us(accelerated, repeat)
    results[name] = {
        "baseline_us": round(base_us, 2),
        "accelerated_us": round(accel_us, 2),
        "speedup": round(base_us / accel_us, 3) if accel_us else None,
    }
    print(f"  {name:<42} {base_us:>10.1f}us -> {accel_us:>8.1f}us   {base_us / accel_us:5.2f}x")


def run_comparison(quick: bool = False) -> dict:
    """Benchmark accelerated hot paths against the pre-acceleration replicas."""
    fastexp.clear_caches()
    param_sets = [("512_160", PARAMS_TEST_512)]
    if not quick:
        param_sets.append(("1024_160", PARAMS_1024_160))
    repeat = 10 if quick else 30
    report: dict = {"quick": quick, "repeat": repeat, "groups": {}}

    for label, params in param_sets:
        print(f"[{label}]")
        results: dict = {}
        keypair = dsa_generate(params)
        message = b"bench message"
        signature = dsa_sign(keypair, message)
        # Warm the promotion cache the way steady-state protocol traffic
        # would: the broker sees each signer key repeatedly.
        for _ in range(fastexp.PROMOTE_AFTER + 1):
            dsa_verify(keypair.public, message, signature)
        _compare(
            "dsa_verify",
            lambda: baseline_dsa_verify(keypair.public, message, signature),
            lambda: dsa_verify(keypair.public, message, signature),
            repeat,
            results,
        )

        items = [
            (keypair.public, msg, dsa_sign(keypair, msg))
            for msg in (b"batch-%d" % i for i in range(BATCH))
        ]
        _compare(
            f"dsa_verify_batch{BATCH}",
            lambda: all(baseline_dsa_verify(pk, m, sig) for pk, m, sig in items),
            lambda: dsa_batch_verify(items),
            max(3, repeat // 3),
            results,
        )

        manager = GroupManager(params)
        members = [manager.register(f"m{i}") for i in range(16)]
        gpk = manager.public_key()
        gsig = group_sign(gpk, members[0], message)
        group_verify(gpk, message, gsig)  # warm roster/opening tables
        _compare(
            "group_verify_roster16",
            lambda: baseline_group_verify(gpk, message, gsig),
            lambda: group_verify(gpk, message, gsig),
            max(3, repeat // 3),
            results,
        )
        report["groups"][label] = results

    return report


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: 512-bit group only, fewer reps"
    )
    parser.add_argument(
        "--out", default=str(OUT_DIR / "BENCH_crypto.json"), help="JSON report path"
    )
    args = parser.parse_args()

    report = run_comparison(quick=args.quick)
    OUT_DIR.mkdir(exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")

    # Acceptance floors (ISSUE / DESIGN §1.1): 1.8x on DSA verification,
    # 2x on group verification at roster 16.
    ok = True
    for label, results in report["groups"].items():
        if results["dsa_verify"]["speedup"] < 1.8:
            print(f"FAIL {label}: dsa_verify speedup {results['dsa_verify']['speedup']} < 1.8")
            ok = False
        if results["group_verify_roster16"]["speedup"] < 2.0:
            print(
                f"FAIL {label}: group_verify_roster16 speedup "
                f"{results['group_verify_roster16']['speedup']} < 2.0"
            )
            ok = False
    print("speedup floors met" if ok else "speedup floors NOT met")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
