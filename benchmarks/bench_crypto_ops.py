"""Microbenchmarks for every cryptographic primitive in the substrate.

Not a paper artifact — engineering instrumentation for the library itself.
Runs at the 512-bit test size so the whole suite stays fast; Table 2's bench
covers the paper-size 1024-bit DSA numbers.
"""

import pytest

from repro.crypto.dsa import dsa_generate, dsa_sign, dsa_verify
from repro.crypto.elgamal import elgamal_decrypt, elgamal_encrypt, elgamal_generate
from repro.crypto.group_signature import GroupManager, group_sign, group_verify
from repro.crypto.hashchain import HashChain, verify_chain_link
from repro.crypto.params import PARAMS_TEST_512
from repro.crypto.schnorr import schnorr_prove, schnorr_verify
from repro.crypto.shamir import combine_shares, split_secret

P = PARAMS_TEST_512


@pytest.fixture(scope="module")
def keypair():
    return dsa_generate(P)


@pytest.fixture(scope="module")
def group():
    manager = GroupManager(P)
    members = [manager.register(f"m{i}") for i in range(8)]
    return manager, members, manager.public_key()


def test_bench_dsa_keygen(benchmark):
    benchmark(dsa_generate, P)


def test_bench_dsa_sign(benchmark, keypair):
    benchmark(dsa_sign, keypair, b"message")


def test_bench_dsa_verify(benchmark, keypair):
    signature = dsa_sign(keypair, b"message")
    assert benchmark(dsa_verify, keypair.public, b"message", signature)


def test_bench_schnorr_prove(benchmark, keypair):
    benchmark(schnorr_prove, keypair, b"context")


def test_bench_schnorr_verify(benchmark, keypair):
    proof = schnorr_prove(keypair, b"context")
    assert benchmark(schnorr_verify, keypair.public, proof, b"context")


def test_bench_elgamal_roundtrip(benchmark):
    key = elgamal_generate(P)
    element = pow(P.g, 12345, P.p)

    def roundtrip():
        return elgamal_decrypt(key, elgamal_encrypt(key.public, element))

    assert benchmark(roundtrip) == element


def test_bench_group_sign(benchmark, group):
    _manager, members, gpk = group
    benchmark(group_sign, gpk, members[0], b"message")


def test_bench_group_verify(benchmark, group):
    _manager, members, gpk = group
    signature = group_sign(gpk, members[0], b"message")
    assert benchmark(group_verify, gpk, b"message", signature)


def test_bench_group_open(benchmark, group):
    manager, members, gpk = group
    signature = group_sign(gpk, members[3], b"message")
    assert benchmark(manager.open, signature) == "m3"


def test_bench_shamir_split_combine(benchmark):
    def roundtrip():
        shares = split_secret(123456789, n=5, k=3, modulus=P.q)
        return combine_shares(shares[:3], P.q)

    assert benchmark(roundtrip) == 123456789


def test_bench_hashchain_build(benchmark):
    benchmark(HashChain, 100)


def test_bench_hashchain_verify(benchmark):
    chain = HashChain(100)
    index, link = chain.pay(50)
    assert benchmark(verify_chain_link, chain.anchor, index, link)
