"""Ablation — load *distribution* across peers (Section 4.3's claim).

    "In general, the more coins a peer issues, the more transfers and
    renewals he needs to handle.  This is desirable, as we expect more
    active peers to do more work."

Figures 4/5 plot only the *average* peer load; this bench looks at the
distribution behind it.  Under the uniform population, served work is
spread evenly; under the power-law population, the activity head issues
most coins and therefore serves most transfers/renewals — work follows
activity, exactly the "desirable" alignment the paper asserts.
"""

from dataclasses import replace

from repro.analysis.stats import gini as _gini
from repro.analysis.stats import pearson as _pearson
from repro.analysis.stats import top_share as _top_share
from repro.analysis.tables import format_table
from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.policies import POLICY_I
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit


def run_models():
    base = SimConfig(
        n_peers=150 if not FULL_SCALE else 1000,
        duration=(5 if not FULL_SCALE else 10) * DAY,
        renewal_period=(1.5 if not FULL_SCALE else 3) * DAY,
        mean_online=2 * HOUR,
        mean_offline=2 * HOUR,
        policy=POLICY_I,
        sync_mode="lazy",
        track_per_peer=True,
    )
    out = {}
    for heterogeneity in ("uniform", "powerlaw"):
        sim = build_simulation(replace(base, heterogeneity=heterogeneity))
        metrics = sim.run().metrics
        served = metrics.served_distribution()
        payments = [metrics.per_peer_payments.get(i, 0) for i in range(base.n_peers)]
        out[heterogeneity] = {
            "gini_served": _gini(served),
            "corr_activity_work": _pearson(
                [float(p) for p in payments], [float(s) for s in served]
            ),
            "top10_share": _top_share(served, 0.1),
        }
    return out


def test_ablation_load_distribution(benchmark, scale_note):
    data = benchmark.pedantic(run_models, rounds=1, iterations=1)
    rows = [
        {
            "population": name,
            "gini_served": round(stats["gini_served"], 3),
            "corr(activity, served)": round(stats["corr_activity_work"], 3),
            "top-10% share": round(stats["top10_share"], 3),
        }
        for name, stats in data.items()
    ]
    emit(
        "ablation_load_distribution",
        format_table(
            rows,
            ["population", "gini_served", "corr(activity, served)", "top-10% share"],
            title=f"Ablation: who does the owner-side work — {scale_note}",
        ),
    )

    uniform, powerlaw = data["uniform"], data["powerlaw"]
    # Power-law concentrates served work far more than uniform…
    assert powerlaw["gini_served"] > uniform["gini_served"] + 0.15
    assert powerlaw["top10_share"] > uniform["top10_share"] * 1.5
    # …and the concentration lands on the *active* peers (the paper's
    # "desirable" alignment): activity and served work correlate strongly.
    assert powerlaw["corr_activity_work"] > 0.7
