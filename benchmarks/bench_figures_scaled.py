"""Extended-scale figure campaign: fig2-fig11 and the ablation grid at 10x.

The paper's evaluation (Section 6.2) runs Setup A at 1000 peers and Setup B
up to 1000 peers.  With the fast engine as the default this campaign re-runs
every figure's sweep at **10x paper scale** — Setup A at N = 10^4 over the
full 8-point µ grid, Setup B over sizes 1000..10000 — for all four
(policy, sync) configurations, plus the ablation grid (detection, power-law
population, layered coins, policy II, message loss, broker restarts) at
N = 10^4, plus **100x spot columns** (N = 10^5, event-budgeted horizons per
the scaling-bench methodology) for selected Setup-A points and the Setup-B
corner.

Every point runs in its own subprocess so the ``peak_rss_kb`` stamp is a
true per-point peak (one process's ``ru_maxrss`` only ever rises), and every
row carries the runner's ``engine`` / ``wall_s`` / ``events_per_sec`` /
``peak_rss_kb`` stamps.

Entry points:

* ``python benchmarks/bench_figures_scaled.py`` — the full campaign
  (~25 min on one core); writes ``benchmarks/out/BENCH_figures_scaled.json``
  and a ``figures_scaled.txt`` report.
* ``--quick`` — CI smoke: 3-point µ grid, 2 Setup-B sizes, no 100x spots,
  event-budgeted horizons (~1 min).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from dataclasses import fields, replace
from pathlib import Path

from _common import OUT_DIR, emit

from repro.analysis.tables import format_series_table
from repro.core.clock import HOUR
from repro.sim.config import (
    FULL_MU_SWEEP_HOURS,
    FULL_SIZE_SWEEP,
    MINUTE,
    SimConfig,
    expected_event_count,
)
from repro.sim.policies import (
    POLICY_I,
    POLICY_I_LAYERED,
    POLICY_II_A,
    POLICY_III,
    policy_by_name,
)

SCALE = 10
SETUP_A_PEERS = 10_000          # 10x the paper's 1000
SPOT_PEERS = 100_000            # 100x spot columns
SPOT_BUDGET = 10_000_000        # event budget for 100x spots (scaling-bench style)
QUICK_BUDGET = 300_000          # event budget per point in --quick mode

CONFIGS = (
    ("I", "proactive"),
    ("I", "lazy"),
    ("III", "proactive"),
    ("III", "lazy"),
)

#: Ablation rows, all at the 10x Setup-B corner (N = 10^4, µ = ν = 2 h).
ABLATIONS = (
    ("baseline", {}),
    ("detection", {"detection": True}),
    ("powerlaw", {"heterogeneity": "powerlaw"}),
    ("superpeer_capped", {"heterogeneity": "powerlaw", "superpeer_max_availability": 0.9}),
    ("layered", {"policy": POLICY_I_LAYERED, "max_layers": 4}),
    ("policy_II_budget", {"policy": POLICY_II_A, "initial_balance": 50}),
    ("message_loss_10pct", {"message_loss": 0.1}),
    ("broker_restarts_3", {"broker_restarts": 3}),
)

#: 100x Setup-A spot columns: (policy I, proactive) at the sweep's edges
#: and the paper's median-availability point.
SPOT_MU_HOURS = (0.25, 2.0, 32.0)

TIMING_KEYS = ("engine", "wall_s", "events_per_sec", "peak_rss_kb")


def _budgeted(config: SimConfig, event_budget: float) -> SimConfig:
    """Shrink the horizon so the expected event count hits ``event_budget``.

    Same methodology as :func:`repro.sim.config.setup_b_point`: the renewal
    period shrinks with the horizon so renewal traffic stays represented.
    """
    per_time = expected_event_count(config) / config.duration
    duration = max(event_budget / per_time, 10 * MINUTE)
    if duration >= config.duration:
        return config
    return replace(
        config,
        duration=duration,
        renewal_period=duration * (config.renewal_period / config.duration),
    )


def _config_spec(config: SimConfig) -> dict:
    """JSON-serializable SimConfig (policy by name) for the child process."""
    spec = {f.name: getattr(config, f.name) for f in fields(SimConfig)}
    spec["policy"] = config.policy.name
    return spec


def _config_from_spec(spec: dict) -> SimConfig:
    spec = dict(spec)
    spec["policy"] = policy_by_name(spec["policy"])
    return SimConfig(**spec)


def _run_point_child(spec: dict) -> None:
    """Child-process entry: run one point via the runner, print its row."""
    from repro.sim.runner import run_one

    print(json.dumps(run_one(_config_from_spec(spec))))


def run_point(config: SimConfig, label: str) -> dict:
    """Run one point in a fresh subprocess; return its stamped row."""
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--point",
            json.dumps(_config_spec(config)),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"point {label} ({config.describe()}) failed "
            f"(rc={proc.returncode}):\n{proc.stderr}"
        )
    row = json.loads(proc.stdout.strip().splitlines()[-1])
    row["label"] = label
    print(
        f"  {label:<42} {row['events']:>12,} ev  {row['wall_s']:>7.1f}s  "
        f"{row['events_per_sec']:>12,.0f} ev/s  "
        f"rss={row['peak_rss_kb'] / 1024:,.0f} MiB",
        flush=True,
    )
    return row


def _setup_a_config(policy_name: str, sync_mode: str, mu_hours: float) -> SimConfig:
    return SimConfig(
        n_peers=SETUP_A_PEERS,
        policy=policy_by_name(policy_name),
        sync_mode=sync_mode,
        mean_online=mu_hours * HOUR,
    )


def _setup_b_config(policy_name: str, sync_mode: str, n_peers: int) -> SimConfig:
    return SimConfig(
        n_peers=n_peers,
        policy=policy_by_name(policy_name),
        sync_mode=sync_mode,
    )


def run_campaign(quick: bool = False) -> dict:
    mu_grid = (0.25, 2.0, 32.0) if quick else FULL_MU_SWEEP_HOURS
    size_grid = (
        (1_000, 2_000) if quick else tuple(n * SCALE for n in FULL_SIZE_SWEEP)
    )

    def prepared(config: SimConfig) -> SimConfig:
        return _budgeted(config, QUICK_BUDGET) if quick else config

    started = time.perf_counter()  # wp-lint: disable=WP102
    setup_a: dict[str, list[dict]] = {}
    for policy_name, sync_mode in CONFIGS:
        key = f"{policy_name}+{sync_mode}"
        print(f"Setup A 10x ({key}):", flush=True)
        setup_a[key] = [
            run_point(
                prepared(_setup_a_config(policy_name, sync_mode, mu)),
                f"A:{key} mu={mu:g}h",
            )
            for mu in mu_grid
        ]

    setup_b: dict[str, list[dict]] = {}
    for policy_name, sync_mode in CONFIGS:
        key = f"{policy_name}+{sync_mode}"
        print(f"Setup B 10x ({key}):", flush=True)
        setup_b[key] = [
            run_point(
                prepared(_setup_b_config(policy_name, sync_mode, n)),
                f"B:{key} N={n}",
            )
            for n in size_grid
        ]

    print("Ablations at 10x:", flush=True)
    base = SimConfig(n_peers=SETUP_A_PEERS)
    ablations = [
        run_point(prepared(replace(base, **overrides)), f"ablation:{name}")
        for name, overrides in ABLATIONS
    ]

    spots: list[dict] = []
    if not quick:
        print("100x spot columns:", flush=True)
        for mu in SPOT_MU_HOURS:
            config = _budgeted(
                replace(_setup_a_config("I", "proactive", mu), n_peers=SPOT_PEERS),
                SPOT_BUDGET,
            )
            spots.append(run_point(config, f"spot:A mu={mu:g}h N={SPOT_PEERS}"))
        for policy_name, sync_mode in CONFIGS:
            config = _budgeted(
                _setup_b_config(policy_name, sync_mode, SPOT_PEERS), SPOT_BUDGET
            )
            spots.append(
                run_point(config, f"spot:B {policy_name}+{sync_mode} N={SPOT_PEERS}")
            )

    return {
        "quick": quick,
        "scale_factor": SCALE,
        "setup_a_peers": SETUP_A_PEERS,
        "spot_peers": SPOT_PEERS,
        "spot_budget_events": SPOT_BUDGET,
        "mu_grid_hours": list(mu_grid),
        "size_grid": list(size_grid),
        "campaign_wall_s": round(time.perf_counter() - started, 1),  # wp-lint: disable=WP102
        "setup_a": setup_a,
        "setup_b": setup_b,
        "ablations": ablations,
        "spots_100x": spots,
    }


def _report(report: dict) -> str:
    """The figures_scaled.txt tables: figure series + timing stamps per row."""
    parts: list[str] = []
    a_metrics = ("broker_cpu", "broker_comm", "broker_cpu_share")
    for key, rows in report["setup_a"].items():
        x = [r["mu_hours"] for r in rows]
        series = {m: [r[m] for r in rows] for m in a_metrics}
        for stamp in TIMING_KEYS:
            series[stamp] = [r[stamp] for r in rows]
        parts.append(
            format_series_table(
                "mu_hours", x, series,
                title=f"Setup A 10x ({key}, N={report['setup_a_peers']:,})",
            )
        )
    b_metrics = ("broker_cpu_share", "broker_comm_share")
    for key, rows in report["setup_b"].items():
        x = [r["n_peers"] for r in rows]
        series = {m: [r[m] for r in rows] for m in b_metrics}
        for stamp in TIMING_KEYS:
            series[stamp] = [r[stamp] for r in rows]
        parts.append(
            format_series_table("n_peers", x, series, title=f"Setup B 10x ({key})")
        )
    for title, rows in (
        ("Ablations at 10x (N=10^4, mu=nu=2h)", report["ablations"]),
        ("100x spot columns (event-budgeted)", report["spots_100x"]),
    ):
        if not rows:
            continue
        x = [r["label"] for r in rows]
        series = {
            m: [r[m] for r in rows]
            for m in ("events", "broker_cpu_share", "broker_comm_share")
        }
        for stamp in TIMING_KEYS:
            series[stamp] = [r[stamp] for r in rows]
        parts.append(format_series_table("label", x, series, title=title))
    return "\n\n".join(parts)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: reduced grids, event-budgeted horizons, no 100x spots",
    )
    parser.add_argument(
        "--out",
        default=str(OUT_DIR / "BENCH_figures_scaled.json"),
        help="JSON report path",
    )
    parser.add_argument("--point", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.point:
        _run_point_child(json.loads(args.point))
        return 0

    report = run_campaign(quick=args.quick)
    OUT_DIR.mkdir(exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    emit("figures_scaled", _report(report))

    # Sanity floors, not figure-shape assertions (those live in the
    # paper-scale benches): every row ran on the fast engine and carries
    # its timing stamps.
    all_rows = [
        row
        for group in (*report["setup_a"].values(), *report["setup_b"].values())
        for row in group
    ] + report["ablations"] + report["spots_100x"]
    ok = True
    for row in all_rows:
        if row["engine"] != "fast":
            print(f"FAIL: {row['label']} ran on {row['engine']!r}")
            ok = False
        if not all(row.get(k) for k in ("wall_s", "events_per_sec", "peak_rss_kb")):
            print(f"FAIL: {row['label']} missing timing stamps")
            ok = False
    print(
        f"{len(all_rows)} rows in {report['campaign_wall_s']:,.0f}s"
        + ("" if ok else " — stamp checks FAILED")
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
