"""Figure 11 — broker communication load scaling with system size.

Message-count counterpart of Figure 10: the broker's share of communication
load stays roughly flat in N (linear growth), at a few percent of total.
"""

from repro.analysis.tables import format_series_table

from _common import emit, rows_of, scaling_sweep

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]


def run_all():
    return {cfg: rows_of(scaling_sweep(*cfg)) for cfg in CONFIGS}


def test_fig11_broker_comm_scaling(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sizes = [r["n_peers"] for r in data[CONFIGS[0]]]
    series = {
        f"{policy}+{sync[:4]}": [round(r["broker_comm_share"], 4) for r in rows]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig11_comm_scaling",
        format_series_table(
            "n_peers", sizes, series,
            title=f"Figure 11: Broker Communication Load Share vs System Size — {scale_note}",
        ),
    )

    for name, values in series.items():
        assert max(values) <= min(values) * 1.5, (name, values)
        assert all(0.005 <= v <= 0.12 for v in values), (name, values)
    for i in range(len(sizes)):
        assert series["I+lazy"][i] < series["I+proa"][i]
