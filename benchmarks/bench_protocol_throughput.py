"""Throughput of the real protocol stack (engineering instrumentation).

Not a paper artifact: end-to-end payments per second through the actual
cryptographic implementation (key generation, DSA, group signatures, full
message exchanges) at the 512-bit test size and at the paper's 1024-bit
production size.  Useful for sizing the full-crypto stack against the
operation-level simulator's cost model.
"""

import pytest

from repro.core.network import WhoPayNetwork
from repro.crypto.params import PARAMS_1024_160, PARAMS_TEST_512


def run_payment_cycle(params, payments: int) -> WhoPayNetwork:
    net = WhoPayNetwork(params=params)
    alice = net.add_peer("alice", balance=payments + 1)
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")
    state = alice.purchase()
    alice.issue("bob", state.coin_y)
    holders = [bob, carol]
    for i in range(payments):
        payer = holders[i % 2]
        payee = holders[(i + 1) % 2]
        payer.transfer(payee.address, state.coin_y)
    return net


def test_throughput_transfers_512(benchmark):
    net = benchmark.pedantic(run_payment_cycle, args=(PARAMS_TEST_512, 20), rounds=1, iterations=1)
    assert net.peers["bob"].counts.transfers_sent + net.peers["carol"].counts.transfers_sent == 20
    seconds = benchmark.stats.stats.mean
    print(f"\n512-bit full-crypto transfers: {20 / seconds:.1f} payments/s")


def test_throughput_transfers_1024(benchmark):
    net = benchmark.pedantic(run_payment_cycle, args=(PARAMS_1024_160, 10), rounds=1, iterations=1)
    total = net.peers["bob"].counts.transfers_sent + net.peers["carol"].counts.transfers_sent
    assert total == 10
    seconds = benchmark.stats.stats.mean
    print(f"\n1024-bit (paper-size) full-crypto transfers: {10 / seconds:.1f} payments/s")


def test_throughput_detection_overhead(benchmark):
    def run_with_detection():
        net = WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=True, dht_size=4)
        alice = net.add_peer("alice", balance=25)
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        holders = [bob, carol]
        for i in range(20):
            holders[i % 2].transfer(holders[(i + 1) % 2].address, state.coin_y)
        return net

    net = benchmark.pedantic(run_with_detection, rounds=1, iterations=1)
    assert net.detection.publishes >= 21  # issue + 20 transfers
