"""Full-crypto protocol throughput smoke (engineering instrumentation).

Not a paper artifact: a paper-size sanity check that the real
cryptographic stack sustains end-to-end payments, now expressed as a thin
wrapper over the pipeline load generator (:mod:`repro.pipeline.loadgen`)
instead of the old two-holder ping-pong.  The generator drives the same
signed wire envelopes through the broker that the throughput benchmark
(``bench_throughput.py``) sweeps; here we run one small configuration per
parameter size and assert the workload is fully accepted.
"""

import tempfile

from repro.crypto.params import PARAMS_1024_160, PARAMS_TEST_512
from repro.pipeline import LoadGenerator, ThroughputEngine, VerificationPool
from repro.store.groupcommit import GroupCommitter
from repro.core.network import PeerConfig


def run_pipeline_smoke(params, ops: int, rounds: int = 2):
    """One pipeline configuration over the seeded workload; returns stats."""
    with tempfile.TemporaryDirectory() as tmp:
        generator = LoadGenerator(
            peers=4, coins_per_peer=2, params=params, store_dir=tmp, seed=11
        )
        pool = VerificationPool(
            generator.params, generator.broker.public_key, [generator._gpk], workers=0
        )
        committer = GroupCommitter(generator.broker.store, max_batch=16)
        engine = ThroughputEngine(
            generator.broker, pool=pool, committer=committer, verify_batch=16
        )
        accepted = processed = fsyncs = 0
        for _ in range(rounds):
            requests = generator.make_round(ops)
            records, stats = engine.run(
                [(r.kind, r.src, r.data, r.idem) for r in requests]
            )
            generator.absorb(records)
            accepted += stats.accepted
            processed += stats.processed
            fsyncs += stats.fsyncs
        return accepted, processed, fsyncs


def test_throughput_transfers_512(benchmark):
    accepted, processed, fsyncs = benchmark.pedantic(
        run_pipeline_smoke, args=(PARAMS_TEST_512, 16), rounds=1, iterations=1
    )
    assert accepted == processed == 32
    assert fsyncs < processed  # group commit actually amortized the fsyncs
    seconds = benchmark.stats.stats.mean
    print(f"\n512-bit full-crypto pipeline: {processed / seconds:.1f} payments/s")


def test_throughput_transfers_1024(benchmark):
    accepted, processed, fsyncs = benchmark.pedantic(
        run_pipeline_smoke, args=(PARAMS_1024_160, 6, 1), rounds=1, iterations=1
    )
    assert accepted == processed == 6
    seconds = benchmark.stats.stats.mean
    print(f"\n1024-bit (paper-size) full-crypto pipeline: {processed / seconds:.1f} payments/s")


def test_throughput_detection_overhead(benchmark):
    """Detection keeps working alongside the pipeline (publish on re-bind)."""
    from repro.core.network import WhoPayNetwork

    def run_with_detection():
        net = WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=True, dht_size=4)
        alice = net.add_peer("alice", PeerConfig(balance=25))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        holders = [bob, carol]
        for i in range(20):
            holders[i % 2].transfer(holders[(i + 1) % 2].address, state.coin_y)
        return net

    net = benchmark.pedantic(run_with_detection, rounds=1, iterations=1)
    assert net.detection.publishes >= 21  # issue + 20 transfers
