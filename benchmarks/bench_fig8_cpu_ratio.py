"""Figure 8 — broker-to-average-peer CPU load ratio (low availability).

Paper: "With extremely low peer availability, broker load is two orders
higher than average peer load.  With higher peer availability … broker load
is one order higher than average peer load."  (At 1000 peers; the ratio's
ceiling scales with the peer count, so the reduced-scale bands are scaled by
N/1000.)  The ratio falls steeply as availability rises.
"""

from repro.analysis.series import is_decreasing
from repro.analysis.tables import format_series_table

from _common import FULL_SCALE, availability_sweep, emit, rows_of

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]
LOW_AVAILABILITY_HOURS = 6.0  # the paper's figure 8 shows mu in [0.25, 6] hrs


def run_all():
    return {cfg: rows_of(availability_sweep(*cfg)) for cfg in CONFIGS}


def test_fig8_cpu_load_ratio(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    all_mu = [r["mu_hours"] for r in data[CONFIGS[0]]]
    keep = [i for i, m in enumerate(all_mu) if m <= LOW_AVAILABILITY_HOURS]
    mu = [all_mu[i] for i in keep]
    n_peers = data[CONFIGS[0]][0]["n_peers"]
    series = {
        f"{policy}+{sync[:4]}": [round(rows[i]["cpu_ratio"], 1) for i in keep]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig8_cpu_ratio",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 8: Broker-Peer CPU Load Ratio (N={n_peers}) — {scale_note}",
        ),
    )

    scale = n_peers / 1000.0
    for name, values in series.items():
        # Steeply decreasing in availability.
        assert is_decreasing(values, tolerance=0.05), (name, values)
        # "Two orders higher" at the extreme low end (scaled by N/1000)…
        assert values[0] > 100 * scale, (name, values[0])
        # …and the majority of load is on the peers throughout: ratio << N.
        assert values[0] < n_peers, (name, values[0])
