"""Ablation — real-time double-spending detection (Section 5.1).

Measures what the DHT-based extension buys and costs, on the real protocol
stack (actual crypto, Chord routing, push notifications):

* **latency**: with detection, a defrauded holder is alarmed at the moment
  the fraudulent re-bind is published — *before* any deposit; without it,
  the fraud surfaces only when the second deposit hits the broker.
* **overhead**: extra transport messages per payment (DHT publishes, payee
  verification reads, notifications).
"""

from repro.analysis.tables import format_table
from repro.core.coin import CoinBinding
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512

from _common import emit

PAYMENTS = 20


def run_scenarios():
    results = {}
    for enable in (False, True):
        net = WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=enable, dht_size=6)
        alice = net.add_peer("alice", PeerConfig(balance=100))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        dave = net.add_peer("dave")
        # A fixed payment workload: alice issues, coins bounce bob<->carol.
        coins = []
        for _ in range(PAYMENTS // 2):
            state = alice.purchase()
            alice.issue("bob", state.coin_y)
            coins.append(state)
        net.transport.reset_counters()
        baseline_msgs = net.transport.total_messages
        for state in coins:
            bob.transfer("carol", state.coin_y)
            carol.transfer("bob", state.coin_y)
        messages = net.transport.total_messages - baseline_msgs

        # Fraud: alice re-binds the first coin to dave behind bob's back.
        state = coins[0]
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 86400,
        )
        alarmed_before_deposit = False
        if enable:
            net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
            alarmed_before_deposit = len(bob.alarms) > 0
        results[enable] = {
            "messages_per_payment": messages / PAYMENTS,
            "alarmed_before_deposit": alarmed_before_deposit,
        }
    return results


def test_ablation_dht_detection(benchmark):
    results = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    off, on = results[False], results[True]
    rows = [
        {
            "detection": "off",
            "msgs_per_payment": round(off["messages_per_payment"], 1),
            "fraud_caught_pre_deposit": off["alarmed_before_deposit"],
        },
        {
            "detection": "on",
            "msgs_per_payment": round(on["messages_per_payment"], 1),
            "fraud_caught_pre_deposit": on["alarmed_before_deposit"],
        },
    ]
    emit(
        "ablation_dht_detection",
        format_table(
            rows,
            ["detection", "msgs_per_payment", "fraud_caught_pre_deposit"],
            title="Ablation: real-time double-spend detection — cost and benefit",
        ),
    )

    # The benefit: fraud is visible before any deposit happens.
    assert on["alarmed_before_deposit"] and not off["alarmed_before_deposit"]
    # The cost: more messages per payment (publish + verify + notify + DHT
    # routing), but bounded — well under 10x the base protocol.
    assert on["messages_per_payment"] > off["messages_per_payment"]
    assert on["messages_per_payment"] < 10 * off["messages_per_payment"]
