"""Ablation — the paper's super-peer conjecture (Section 6.2).

After finding that broker load grows linearly with system size, the authors
conjecture: "In reality, we are more likely to see power-law peers … peers
will have better chances of finding a coin owned by a super peer (who is
most likely online) at the time of payments.  As a result, broker load will
probably grow sublinearly with total system load.  Certainly we need to do
more simulation work to verify the validity of this conjecture."

This bench *is* that simulation work.  Model: Zipf activity weights, payee
selection proportional to activity, availability rising with activity to a
0.98 ceiling (see ``SimConfig.heterogeneity``).

Finding (asserted below): the conjectured mechanism is real but it is a
**level** effect, not a **scaling** effect — super peers cut the broker's
share of load roughly in half at every system size (most circulating coins
end up owned by highly-available peers, so downtime operations collapse),
yet the share remains flat in N: broker load still grows linearly with
total system load.  The conjecture's premise holds; its conclusion does not.
"""

from dataclasses import replace

from repro.analysis.tables import format_series_table
from repro.sim.config import setup_b_configs
from repro.sim.policies import POLICY_I
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit


def run_models():
    data = {}
    for heterogeneity in ("uniform", "powerlaw"):
        shares = []
        sizes = []
        for config in setup_b_configs(policy=POLICY_I, sync_mode="lazy", small=not FULL_SCALE):
            config = replace(config, heterogeneity=heterogeneity)
            metrics = build_simulation(config).run().metrics
            sizes.append(config.n_peers)
            shares.append(metrics.broker_cpu_share())
        data[heterogeneity] = (sizes, shares)
    return data


def test_ablation_superpeer_conjecture(benchmark, scale_note):
    data = benchmark.pedantic(run_models, rounds=1, iterations=1)
    sizes = data["uniform"][0]
    series = {
        "uniform": [round(v, 4) for v in data["uniform"][1]],
        "powerlaw": [round(v, 4) for v in data["powerlaw"][1]],
    }
    emit(
        "ablation_superpeers",
        format_series_table(
            "n_peers", sizes, series,
            title=f"Ablation: broker CPU share, uniform vs power-law peers — {scale_note}",
        ),
    )

    # The conjectured mechanism: super peers substantially reduce broker
    # involvement at every system size.
    for i in range(len(sizes)):
        assert series["powerlaw"][i] < 0.75 * series["uniform"][i], sizes[i]
    # The conjectured conclusion does NOT hold: the share stays flat in N
    # (no sublinear broker-load growth) under the power-law model too.
    low, high = min(series["powerlaw"]), max(series["powerlaw"])
    assert high <= low * 1.6, series["powerlaw"]
