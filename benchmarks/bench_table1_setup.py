"""Table 1 — simulation setup.

Table 1 is configuration, not measurement; "reproducing" it means our
presets encode exactly the paper's parameters.  The bench times preset
construction (trivial) and emits the table.
"""

from repro.analysis.tables import format_table
from repro.core.clock import DAY, HOUR
from repro.sim.config import FULL_MU_SWEEP_HOURS, FULL_SIZE_SWEEP, setup_a_configs, setup_b_configs
from repro.sim.policies import POLICIES

from _common import emit


def build_presets():
    configs_a = {
        (name, nu): setup_a_configs(policy=policy, mean_offline_hours=nu)
        for name, policy in POLICIES.items()
        for nu in (1.0, 2.0, 4.0)
    }
    configs_b = {name: setup_b_configs(policy=policy) for name, policy in POLICIES.items()}
    return configs_a, configs_b


def test_table1_setup_presets(benchmark):
    configs_a, configs_b = benchmark.pedantic(build_presets, rounds=1, iterations=1)

    # Setup A (Table 1 row 1): policies I, II.a, II.b, III; both sync modes;
    # µ from 15 mins to 32 hrs; ν in {1, 2, 4} hrs; 1000 peers.
    assert FULL_MU_SWEEP_HOURS[0] == 0.25 and FULL_MU_SWEEP_HOURS[-1] == 32.0
    for (policy_name, nu), configs in configs_a.items():
        for config in configs:
            assert config.n_peers == 1000
            assert config.mean_offline == nu * HOUR
            assert config.duration == 10 * DAY
            assert config.renewal_period == 3 * DAY
            assert config.payment_interval == 5 * 60
            assert config.policy.name == policy_name

    # Setup B (Table 1 row 2): µ = ν = 2 hrs, 100–1000 peers.
    assert list(FULL_SIZE_SWEEP) == [100 * i for i in range(1, 11)]
    for configs in configs_b.values():
        for config in configs:
            assert config.mean_online == config.mean_offline == 2 * HOUR

    rows = [
        {
            "Setup": "A",
            "Policy": "I, II.a, II.b, III",
            "Sync": "proactive, lazy",
            "mu": "15 mins - 32 hrs",
            "nu": "1, 2, 4 hrs",
            "Peers": 1000,
        },
        {
            "Setup": "B",
            "Policy": "I, II.a, II.b, III",
            "Sync": "proactive, lazy",
            "mu": "2 hrs",
            "nu": "2 hrs",
            "Peers": "100 - 1000",
        },
    ]
    emit(
        "table1_setup",
        format_table(rows, ["Setup", "Policy", "Sync", "mu", "nu", "Peers"], title="Table 1: Simulation Setup (presets verified)"),
    )
