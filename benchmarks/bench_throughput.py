"""Broker throughput: batched verification + group commit vs scalar baseline.

The pipeline PR's acceptance artifact.  Every configuration replays the
same seeded Zipf workload (downtime transfers, renewals, purchases —
fully signed wire envelopes from :class:`repro.pipeline.loadgen.LoadGenerator`)
against a journaled broker, timing only the broker-side work
(:meth:`repro.pipeline.engine.ThroughputEngine.run`):

* **baseline** — no verification pool (the broker runs its own scalar
  group check per request) and no group commit (one fsync per request):
  the pre-pipeline state of the repo.
* **sweep rows** — worker count x batch size.  ``workers=0`` verifies
  inline (batched, no IPC); ``workers>=1`` forks that many pool
  processes, each primed with the parent's exported fixed-base tables.
  The batch size is used for both the verification batch and the
  group-commit ``max_batch``, so one knob moves both amortizers.

On a single-core container the worker rows measure IPC overhead, not
parallelism — the committed headline speedup comes from the batching
itself (randomized batch verification + one fsync per batch), which is
why ``workers=0`` rows are part of the sweep rather than a control.

Entry points:

* ``python benchmarks/bench_throughput.py`` — full sweep; writes
  ``benchmarks/out/BENCH_throughput.json``.
* ``--quick`` — CI smoke: fewer ops, smaller sweep, artifact still
  written (to a side path unless ``--out`` says otherwise).
* ``--check-speedup X`` — exit non-zero unless the best sweep row is at
  least ``X`` times the baseline rate (the PR floor is 3.0; CI uses a
  lower bar so shared-runner noise doesn't flake).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from _common import OUT_DIR

from repro.crypto.params import PARAMS_TEST_512
from repro.pipeline import LoadGenerator, ThroughputEngine, VerificationPool
from repro.store.groupcommit import GroupCommitter

SEED = 20060704
#: Roster size matters: scalar group verification is linear in the roster
#: while the batch verifier is nearly flat, and the paper's population is
#: 1000 peers — 16 is still a conservative stand-in.
PEERS = 16
COINS_PER_PEER = 2
#: max_delay safety valve for the sweep rows (the committer's injected
#: timer is wall-clock here — benchmarks are outside the WP102 scope).
MAX_DELAY_S = 0.05


def run_config(
    ops_per_round: int,
    rounds: int,
    workers: int | None,
    batch: int,
    quick: bool,
) -> dict:
    """Replay the seeded workload through one pipeline configuration.

    ``workers=None`` is the baseline: no pool, no committer.  Returns the
    row dict for the JSON artifact.
    """
    with tempfile.TemporaryDirectory() as tmp:
        generator = LoadGenerator(
            peers=PEERS,
            coins_per_peer=COINS_PER_PEER,
            params=PARAMS_TEST_512,
            store_dir=tmp,
            seed=SEED,
        )
        pool = None
        committer = None
        if workers is not None:
            pool = VerificationPool(
                generator.params,
                generator.broker.public_key,
                [generator._gpk],
                workers=workers,
                chunk_size=batch,
            )
            committer = GroupCommitter(
                generator.broker.store,
                max_batch=batch,
                max_delay=MAX_DELAY_S,
                timer=time.perf_counter,
            )
        engine = ThroughputEngine(
            generator.broker,
            pool=pool,
            committer=committer,
            verify_batch=batch,
        )
        accepted = 0
        staged = 0
        fsyncs = 0
        elapsed = 0.0
        try:
            for _ in range(rounds):
                requests = generator.make_round(ops_per_round)
                wire = [(r.kind, r.src, r.data, r.idem) for r in requests]
                start = time.perf_counter()
                records, stats = engine.run(wire)
                elapsed += time.perf_counter() - start
                generator.absorb(records)
                accepted += stats.accepted
                staged += stats.staged
                fsyncs += stats.fsyncs
        finally:
            if pool is not None:
                pool.close()
        ops = ops_per_round * rounds
        if accepted != ops:
            raise AssertionError(
                f"workload not fully accepted: {accepted}/{ops} "
                f"(workers={workers}, batch={batch})"
            )
        return {
            "mode": "baseline" if workers is None else "pipeline",
            "workers": workers,
            "batch": None if workers is None else batch,
            "ops": ops,
            "accepted": accepted,
            "staged": staged,
            "fsyncs": fsyncs,
            "seconds": round(elapsed, 4),
            "payments_per_sec": round(ops / elapsed, 2),
        }


def run_sweep(quick: bool) -> dict:
    """Baseline plus the worker-count x batch-size grid."""
    if quick:
        ops_per_round, rounds = 24, 2
        grid = [(0, 16), (1, 16)]
    else:
        ops_per_round, rounds = 48, 3
        grid = [
            (workers, batch)
            for workers in (0, 1, 2)
            for batch in (8, 32)
        ]
    baseline = run_config(ops_per_round, rounds, None, 1, quick)
    print(
        f"baseline (scalar verify, fsync/request): "
        f"{baseline['payments_per_sec']} payments/s over {baseline['ops']} ops"
    )
    rows = []
    for workers, batch in grid:
        row = run_config(ops_per_round, rounds, workers, batch, quick)
        row["speedup"] = round(
            row["payments_per_sec"] / baseline["payments_per_sec"], 2
        )
        rows.append(row)
        print(
            f"workers={workers} batch={batch}: {row['payments_per_sec']} payments/s "
            f"({row['speedup']}x, {row['fsyncs']} fsyncs for {row['ops']} ops)"
        )
    best = max(rows, key=lambda row: row["speedup"])
    return {
        "benchmark": "broker_throughput_pipeline",
        "params": "PARAMS_TEST_512",
        "seed": SEED,
        "quick": quick,
        "workload": {
            "peers": PEERS,
            "coins_per_peer": COINS_PER_PEER,
            "ops_per_round": ops_per_round,
            "rounds": rounds,
            "mix": {"transfer": 0.6, "renewal": 0.25, "purchase": 0.15},
            "zipf_s": 1.1,
        },
        "baseline": baseline,
        "rows": rows,
        "best_speedup": best["speedup"],
        "best_config": {"workers": best["workers"], "batch": best["batch"]},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless best speedup >= X",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="artifact path (default: benchmarks/out/BENCH_throughput.json)",
    )
    args = parser.parse_args(argv)
    report = run_sweep(quick=args.quick)
    out_path = args.out
    if out_path is None:
        name = "BENCH_throughput_quick.json" if args.quick else "BENCH_throughput.json"
        out_path = OUT_DIR / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if args.check_speedup is not None and report["best_speedup"] < args.check_speedup:
        print(
            f"FAIL: best speedup {report['best_speedup']}x "
            f"< required {args.check_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
