"""Figure 6 — broker CPU load, four configurations.

Paper: "The plots reveal two things.  First, lazy synchronization cuts down
broker load significantly.  Second, the results apparently agree with our
conjecture that the broker-centric policy yields less load on the broker
than the user-centric policy."
"""

from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]


def run_all():
    return {cfg: rows_of(availability_sweep(*cfg)) for cfg in CONFIGS}


def test_fig6_broker_cpu_load(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mu = [r["mu_hours"] for r in data[CONFIGS[0]]]
    series = {
        f"{policy}+{sync[:4]}": [r["broker_cpu"] for r in rows]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig6_broker_cpu",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 6: Broker CPU Load (Table 3 units) — {scale_note}",
        ),
    )

    for i in range(len(mu)):
        # Lazy < proactive at the same policy.
        assert series["I+lazy"][i] < series["I+proa"][i], mu[i]
        assert series["III+lazy"][i] < series["III+proa"][i], mu[i]
        # Broker-centric (III) <= user-centric (I) at the same sync mode.
        assert series["III+proa"][i] <= series["I+proa"][i] * 1.02, mu[i]
        assert series["III+lazy"][i] <= series["I+lazy"][i] * 1.02, mu[i]
