"""Ablation — the group-signature cost assumption (Table 3's "wild guess").

The paper admits it guessed group-signature cost at 2x DSA ("we are forced
to make a wild guess that efficient group signature schemes exist…").  Our
actual scheme's cost is linear in the roster size (see the Table 3 bench).
This ablation re-prices the same simulated operation mix under three cost
models and shows what the guess is load-bearing for:

* ``paper``      — Table 3 as printed (gsig/gver = 4 keygen units);
* ``measured-8`` — our scheme at a small roster (ratio ≈ 50);
* ``measured-N`` — our scheme at roster size = system size (ratio ∝ N).

Finding (asserted below): the guess is *not* load-bearing, but for a
subtler reason than "group signatures are rare".  The broker verifies group
signatures too (every downtime operation and deposit carries one), so
raising the gsig cost inflates both sides.  Which side wins depends on the
operation mix: at low availability the broker's gver-heavy downtime traffic
dominates and its share creeps *up* slightly; at high availability the
peers' transfer traffic dominates and the broker share falls.  Across the
whole sweep and all three models the headline is untouched: the broker
share stays far below the centralized alternative.
"""

from repro.analysis.tables import format_series_table
from repro.sim.config import setup_a_configs
from repro.sim.costs import OP_COSTS
from repro.sim.policies import POLICY_I
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit

#: Measured gsig/gver relative cost at roster size 8 (Table 3 bench): ~50.
MEASURED_RATIO_SMALL = 50.0
#: Our scheme scales linearly: ratio ≈ 6.5 per member (50/8 extrapolated).
PER_MEMBER_RATIO = MEASURED_RATIO_SMALL / 8.0


def _reprice(metrics, gsig_cost: float) -> tuple[float, float]:
    """(broker_cpu, peer_cpu_total) with group sig/verify at ``gsig_cost``."""
    weights = {"keygen": 1, "sig": 2, "ver": 2, "gsig": gsig_cost, "gver": gsig_cost}
    broker = peer = 0.0
    for op, count in metrics.ops.items():
        cost = OP_COSTS[op]
        peer += count * sum(weights[m] * n for m, n in cost.peer_micro.items())
        broker += count * sum(weights[m] * n for m, n in cost.broker_micro.items())
    peer += sum(weights[m] * n for m, n in metrics.extra_peer_micro.items())
    return broker, peer


def run_models():
    rows = []
    for config in setup_a_configs(policy=POLICY_I, sync_mode="lazy", small=not FULL_SCALE):
        metrics = build_simulation(config).run().metrics
        models = {
            "paper": 4.0,
            "measured-8": MEASURED_RATIO_SMALL,
            "measured-N": PER_MEMBER_RATIO * config.n_peers,
        }
        row = {"mu": config.mean_online / 3600.0}
        for name, gsig_cost in models.items():
            broker, peer = _reprice(metrics, gsig_cost)
            per_peer = peer / config.n_peers
            row[f"ratio({name})"] = broker / per_peer if per_peer else 0.0
            row[f"share({name})"] = broker / (broker + peer) if broker + peer else 0.0
        rows.append(row)
    return rows


def test_ablation_gsig_cost_models(benchmark, scale_note):
    rows = benchmark.pedantic(run_models, rounds=1, iterations=1)
    mu = [r["mu"] for r in rows]
    series = {
        key: [round(r[key], 4) for r in rows]
        for key in ("share(paper)", "share(measured-8)", "share(measured-N)")
    }
    emit(
        "ablation_gsig_cost",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Ablation: broker CPU share under three group-signature cost models — {scale_note}",
        ),
    )

    for i in range(len(mu)):
        # The headline survives every cost model at every point: the broker
        # carries a small minority of the load.
        for key in series:
            assert series[key][i] < 0.35, (mu[i], key)
        # The models stay within a small factor of each other (the spread
        # widens at extreme availability where absolute shares are tiny).
        values = [series[key][i] for key in series]
        assert max(values) <= 3.0 * min(values), mu[i]
    # The crossover: costlier gsigs RAISE the broker share at low
    # availability (broker-side gver in downtime ops) and LOWER it at high
    # availability (peer-side transfer gsigs dominate).
    assert series["share(measured-N)"][0] > series["share(paper)"][0]
    assert series["share(measured-N)"][-1] < series["share(paper)"][-1]
