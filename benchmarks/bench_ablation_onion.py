"""Ablation — the price of network-level anonymity (Section 4.3).

The paper assumes onion routing underneath WhoPay "whenever network level
anonymity is desired" and never prices it.  This bench does: the same
payment sequence with direct transport vs 1-, 2- and 3-hop onion circuits,
counting transport messages and bytes.

Expected: message count grows linearly with circuit length (each protocol
round trip costs 2 extra message-endpoints per hop), byte volume grows a
bit faster (layered boxes nest), and the protocol outcome is identical.
"""

from repro.analysis.tables import format_table
from repro.anonymity.onion import OnionOverlay, anonymize_node
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512

from _common import emit

PAYMENTS = 8


def run_at_hops(hop_count: int) -> dict:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", PeerConfig(balance=50))
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")
    if hop_count:
        overlay = OnionOverlay(net.transport, net.params, size=hop_count)
        anonymize_node(bob, overlay)
    coins = []
    for _ in range(PAYMENTS):
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        coins.append(state.coin_y)
    net.transport.reset_counters()
    for coin_y in coins:
        bob.transfer("carol", coin_y)
    counter = net.transport.counters
    total_bytes = sum(c.bytes_sent for c in counter.values())
    return {
        "hops": hop_count,
        "messages": net.transport.total_messages,
        "kb": round(total_bytes / 1024, 1),
        "delivered": len(carol.wallet),
    }


def run_all():
    return [run_at_hops(h) for h in (0, 1, 2, 3)]


def test_ablation_onion_overhead(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "ablation_onion",
        format_table(
            rows,
            ["hops", "messages", "kb", "delivered"],
            title=f"Ablation: onion-routing overhead over {PAYMENTS} owner-served transfers",
        ),
    )

    # Correctness is hop-independent.
    assert all(r["delivered"] == PAYMENTS for r in rows)
    # Message overhead is linear in circuit length: each of the payer's
    # round trips gains one request+response per hop.
    base = rows[0]["messages"]
    per_hop = [(r["messages"] - base) / r["hops"] for r in rows if r["hops"]]
    assert max(per_hop) - min(per_hop) <= 1e-9, per_hop
    # Byte volume strictly grows with hops (layered boxes nest).
    kbs = [r["kb"] for r in rows]
    assert kbs == sorted(kbs) and kbs[-1] > kbs[0]
