"""Figure 9 — broker-to-average-peer communication load ratio.

Same presentation as Figure 8 under the message-count metric; identical
shape expectations.
"""

from repro.analysis.series import is_decreasing
from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]
LOW_AVAILABILITY_HOURS = 6.0


def run_all():
    return {cfg: rows_of(availability_sweep(*cfg)) for cfg in CONFIGS}


def test_fig9_comm_load_ratio(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    all_mu = [r["mu_hours"] for r in data[CONFIGS[0]]]
    keep = [i for i, m in enumerate(all_mu) if m <= LOW_AVAILABILITY_HOURS]
    mu = [all_mu[i] for i in keep]
    n_peers = data[CONFIGS[0]][0]["n_peers"]
    series = {
        f"{policy}+{sync[:4]}": [round(rows[i]["comm_ratio"], 1) for i in keep]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig9_comm_ratio",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 9: Broker-Peer Communication Load Ratio (N={n_peers}) — {scale_note}",
        ),
    )

    scale = n_peers / 1000.0
    for name, values in series.items():
        assert is_decreasing(values, tolerance=0.05), (name, values)
        assert values[0] > 50 * scale, (name, values[0])
        assert values[0] < n_peers, (name, values[0])
