"""Table 2 — measured operation cost (DSA 1024-bit).

The paper measured 10,000 iterations of DSA 1024-bit key generation,
signature generation, and verification with Bouncy Castle on a 3.06 GHz
Xeon: 7.8 ms / 13.9 ms / 12.3 ms.  We measure our from-scratch pure-Python
DSA at the same parameter size on this host.  Absolute values differ
(different implementation, different hardware — recorded in EXPERIMENTS.md);
the analysis only consumes the *ratios*, checked in bench_table3.
"""

import pytest

from repro.analysis.tables import format_table
from repro.crypto.dsa import dsa_generate, dsa_sign, dsa_verify
from repro.crypto.params import PARAMS_1024_160

from _common import emit

#: Paper Table 2 (milliseconds, Bouncy Castle, 3.06 GHz Xeon, 2005).
PAPER_TABLE2_MS = {"keygen": 7.8, "sign": 13.9, "verify": 12.3}

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def fixed_keypair():
    return dsa_generate(PARAMS_1024_160)


@pytest.fixture(scope="module")
def fixed_signature(fixed_keypair):
    return dsa_sign(fixed_keypair, b"table-2 message")


def test_table2_dsa_keygen(benchmark):
    benchmark(dsa_generate, PARAMS_1024_160)
    _RESULTS["keygen"] = benchmark.stats.stats.mean * 1000


def test_table2_dsa_sign(benchmark, fixed_keypair):
    counter = iter(range(10**9))

    def sign_fresh():
        return dsa_sign(fixed_keypair, b"msg-%d" % next(counter))

    benchmark(sign_fresh)
    _RESULTS["sign"] = benchmark.stats.stats.mean * 1000


def test_table2_dsa_verify(benchmark, fixed_keypair, fixed_signature):
    result = benchmark(dsa_verify, fixed_keypair.public, b"table-2 message", fixed_signature)
    assert result is True
    _RESULTS["verify"] = benchmark.stats.stats.mean * 1000
    _report()


def _report():
    assert set(_RESULTS) == {"keygen", "sign", "verify"}, "run the whole module"
    rows = [
        {
            "Operation": f"DSA 1024-bit {name}",
            "paper_ms": PAPER_TABLE2_MS[name],
            "measured_ms": round(_RESULTS[name], 3),
        }
        for name in ("keygen", "sign", "verify")
    ]
    emit(
        "table2_crypto_cost",
        format_table(rows, ["Operation", "paper_ms", "measured_ms"], title="Table 2: Measured Operation Cost"),
    )
    # Shape: all three operations are the same order of magnitude, with
    # sign/verify costing at least as much as keygen's big exponentiation
    # work within a generous factor (implementations differ in constants).
    for value in _RESULTS.values():
        assert 0 < value < 1000  # sane absolute range on any modern host
    assert _RESULTS["verify"] > _RESULTS["keygen"] * 0.5
