"""Figure 10 — broker CPU load scaling with system size.

The paper's *negative* result, reproduced faithfully: with uniform peers and
random payees, broker load grows about linearly with total system load, so
the broker's *share* of total CPU load stays roughly flat (~3–6%) from 100
to 1000 peers — rather than shrinking sublinearly as the authors had hoped.
"On the other hand, even with linearly scaling broker load, our system is
able to relieve the broker of around 95% of the system load."
"""

from repro.analysis.tables import format_series_table

from _common import emit, rows_of, scaling_sweep

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]


def run_all():
    return {cfg: rows_of(scaling_sweep(*cfg)) for cfg in CONFIGS}


def test_fig10_broker_cpu_scaling(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sizes = [r["n_peers"] for r in data[CONFIGS[0]]]
    series = {
        f"{policy}+{sync[:4]}": [round(r["broker_cpu_share"], 4) for r in rows]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig10_cpu_scaling",
        format_series_table(
            "n_peers", sizes, series,
            title=f"Figure 10: Broker CPU Load Share vs System Size — {scale_note}",
        ),
    )

    for name, values in series.items():
        # Roughly flat: linear broker-load growth (the paper's finding).
        assert max(values) <= min(values) * 1.5, (name, values)
        # Broker handles only a few percent — peers absorb ~95%.
        assert all(0.005 <= v <= 0.12 for v in values), (name, values)
    # Config orderings persist at every size.
    for i in range(len(sizes)):
        assert series["I+lazy"][i] < series["I+proa"][i]
        assert series["III+proa"][i] <= series["I+proa"][i] * 1.02
