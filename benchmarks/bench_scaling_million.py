"""Simulation-engine scaling benchmark: events/sec and peak RSS up to N=10^6.

The paper's evaluation (Section 6.2) stops at 1000 peers; the ROADMAP
north star is millions.  This bench measures the simulation engines on
event-budgeted Setup-B points (:func:`repro.sim.config.setup_b_point` —
the horizon shrinks with N so the *event count* stays fixed and the
per-event cost is what varies) across N ∈ {10^3, 10^4, 10^5, 10^6}:

* **speedup points** (N=10^3, 10^4, 400k-event budget): the reference
  engine and the fast engine run interleaved, repeated, best-of; the
  N=10^4 ratio is the headline "≥10x" acceptance number.
* **scale points** (N=10^5 and, in full mode, 10^6, 2M-event budget):
  fast engine only — the reference engine cannot reach them in
  reasonable time, which is the point of this PR.

Every point runs in its own subprocess so ``ru_maxrss`` is a true
per-point peak, not the high-water mark of whichever point ran first.

Entry points:

* ``python benchmarks/bench_scaling_million.py`` — full sweep including
  the million-peer point; asserts it completes under 10 minutes and
  8 GiB peak RSS, and writes ``benchmarks/out/BENCH_sim_scaling.json``.
* ``--quick`` — CI smoke: caps the sweep at N=10^5 and skips the
  full-mode wall/RSS assertions.
* ``--check-speedup X`` — exit non-zero unless the recorded N=10^4
  fast/reference ratio is at least ``X`` (CI uses 5.0: half the
  committed 10x so machine noise on shared runners doesn't flake).
* ``--check-baseline FRAC`` — regression floor against the *committed*
  report: exit non-zero unless this run's N=10^4 fast events/sec is at
  least ``FRAC`` of the committed headline (the baseline is read before
  the run overwrites ``--out``).  CI uses 0.4 — shared runners are
  slower than the dev container, but a real regression (a hot-path slip
  past the in-run ratio check) still trips it.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

from _common import OUT_DIR

SPEEDUP_BUDGET = 400_000
SCALE_BUDGET = 2_000_000
SPEEDUP_SIZES = (1_000, 10_000)
SPEEDUP_REPEATS = 5
HEADLINE_N = 10_000
SEED = 20060704

MAX_MILLION_WALL_S = 600.0
MAX_MILLION_RSS_KB = 8 * 1024 * 1024  # 8 GiB in KiB (Linux ru_maxrss units)


def _run_point_child(spec: dict) -> None:
    """Child-process entry: run one point, print its row as JSON."""
    import resource
    from dataclasses import replace

    from repro.sim.config import setup_b_point
    from repro.sim.engine import build_simulation

    config = replace(
        setup_b_point(spec["n_peers"], event_budget=spec["event_budget"]),
        seed=spec["seed"],
    )
    build_start = time.perf_counter()
    sim = build_simulation(config, spec["engine"])
    run_start = time.perf_counter()
    metrics = sim.run().metrics
    end = time.perf_counter()
    wall = end - run_start
    print(
        json.dumps(
            {
                "n_peers": spec["n_peers"],
                "engine": spec["engine"],
                "event_budget": spec["event_budget"],
                "seed": spec["seed"],
                "sim_duration_s": config.duration,
                "events": metrics.events,
                "payments_made": metrics.payments_made,
                "setup_s": round(run_start - build_start, 4),
                "wall_s": round(wall, 4),
                "total_s": round(end - build_start, 4),
                "events_per_sec": round(metrics.events / wall) if wall > 0 else 0,
                "peak_rss_kb": int(
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                ),
            }
        )
    )


def run_point(n_peers: int, engine: str, event_budget: int, seed: int = SEED) -> dict:
    """Run one point in a fresh subprocess and return its row."""
    spec = {
        "n_peers": n_peers,
        "engine": engine,
        "event_budget": event_budget,
        "seed": seed,
    }
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--point", json.dumps(spec)],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"point {spec} failed (rc={proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_sweep(quick: bool = False) -> dict:
    points: list[dict] = []

    # Interleave reference/fast repeats so machine-load drift hits both
    # engines alike; keep the best run of each (the least-perturbed one).
    best: dict[tuple[int, str], dict] = {}
    for n in SPEEDUP_SIZES:
        for rep in range(SPEEDUP_REPEATS):
            for engine in ("reference", "fast"):
                row = run_point(n, engine, SPEEDUP_BUDGET)
                key = (n, engine)
                if key not in best or row["events_per_sec"] > best[key]["events_per_sec"]:
                    best[key] = row
                print(
                    f"  n={n:>9,} engine={engine:<9} rep={rep} "
                    f"{row['events_per_sec']:>12,} events/s  "
                    f"rss={row['peak_rss_kb'] / 1024:,.0f} MiB",
                    flush=True,
                )
    points.extend(best[(n, e)] for n in SPEEDUP_SIZES for e in ("reference", "fast"))

    scale_sizes = (100_000,) if quick else (100_000, 1_000_000)
    for n in scale_sizes:
        row = run_point(n, "fast", SCALE_BUDGET)
        points.append(row)
        print(
            f"  n={n:>9,} engine=fast      "
            f"{row['events_per_sec']:>12,} events/s  "
            f"total={row['total_s']:.1f}s  "
            f"rss={row['peak_rss_kb'] / 1024:,.0f} MiB",
            flush=True,
        )

    ratios = {}
    for n in SPEEDUP_SIZES:
        ref = best[(n, "reference")]["events_per_sec"]
        fast = best[(n, "fast")]["events_per_sec"]
        ratios[str(n)] = {
            "reference_events_per_sec": ref,
            "fast_events_per_sec": fast,
            "speedup": round(fast / ref, 2) if ref else None,
        }

    return {
        "quick": quick,
        "seed": SEED,
        "speedup_budget_events": SPEEDUP_BUDGET,
        "scale_budget_events": SCALE_BUDGET,
        "speedup_repeats": SPEEDUP_REPEATS,
        "headline_n": HEADLINE_N,
        "speedup": ratios,
        "points": points,
    }


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: cap the sweep at N=10^5"
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the N=10^4 fast/reference ratio is at least X",
    )
    parser.add_argument(
        "--check-baseline",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail unless the N=10^4 fast events/sec reaches FRAC of the "
        "committed report's headline (read from --out before the run)",
    )
    parser.add_argument(
        "--out",
        default=str(OUT_DIR / "BENCH_sim_scaling.json"),
        help="JSON report path",
    )
    parser.add_argument("--point", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.point:
        _run_point_child(json.loads(args.point))
        return 0

    baseline_eps = None
    if args.check_baseline is not None:
        with open(args.out) as fh:
            baseline_eps = json.load(fh)["speedup"][str(HEADLINE_N)][
                "fast_events_per_sec"
            ]

    report = run_sweep(quick=args.quick)
    OUT_DIR.mkdir(exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    ok = True
    headline = report["speedup"][str(HEADLINE_N)]
    print(
        f"N={HEADLINE_N:,}: reference {headline['reference_events_per_sec']:,} ev/s, "
        f"fast {headline['fast_events_per_sec']:,} ev/s -> {headline['speedup']}x"
    )
    if args.check_speedup is not None and (
        headline["speedup"] is None or headline["speedup"] < args.check_speedup
    ):
        print(f"FAIL: N={HEADLINE_N:,} speedup {headline['speedup']} < {args.check_speedup}")
        ok = False
    if baseline_eps is not None:
        floor = args.check_baseline * baseline_eps
        current = headline["fast_events_per_sec"]
        if current < floor:
            print(
                f"FAIL: N={HEADLINE_N:,} fast {current:,} ev/s < "
                f"{args.check_baseline} x committed {baseline_eps:,} ev/s"
            )
            ok = False
        else:
            print(
                f"N={HEADLINE_N:,} fast {current:,} ev/s >= "
                f"{args.check_baseline} x committed {baseline_eps:,} ev/s"
            )

    if not args.quick:
        # Acceptance: the million-peer Setup-B point must complete in under
        # 10 minutes and 8 GiB peak RSS.
        million = next(p for p in report["points"] if p["n_peers"] == 1_000_000)
        if million["total_s"] >= MAX_MILLION_WALL_S:
            print(f"FAIL: N=10^6 took {million['total_s']:.1f}s >= {MAX_MILLION_WALL_S}s")
            ok = False
        if million["peak_rss_kb"] >= MAX_MILLION_RSS_KB:
            print(
                f"FAIL: N=10^6 peak RSS {million['peak_rss_kb'] / 1024:,.0f} MiB "
                f">= {MAX_MILLION_RSS_KB / 1024:,.0f} MiB"
            )
            ok = False
        print(
            f"N=1,000,000: {million['events_per_sec']:,} ev/s, "
            f"{million['total_s']:.1f}s, {million['peak_rss_kb'] / 1024:,.0f} MiB peak"
        )

    print("scaling floors met" if ok else "scaling floors NOT met")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
