"""Ablation — the middle-ground policies II.a and II.b.

The paper ran policy II and reported only that its results "were less
interesting"; this bench shows why: II.a/II.b land between I and III on
broker load at every availability point, so they add no new information —
but we verify the sandwich rather than assume it.
"""

from repro.analysis.tables import format_series_table
from repro.sim.config import setup_a_configs
from repro.sim.policies import POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit

POLICIES = (POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III)


def run_all_policies():
    data = {}
    for policy in POLICIES:
        configs = setup_a_configs(policy=policy, sync_mode="proactive", small=not FULL_SCALE)
        data[policy.name] = [
            (config.mean_online / 3600.0, build_simulation(config).run().metrics.broker_cpu_load())
            for config in configs
        ]
    return data


def test_ablation_policy2_sandwich(benchmark, scale_note):
    data = benchmark.pedantic(run_all_policies, rounds=1, iterations=1)
    mu = [point[0] for point in data["I"]]
    series = {name: [point[1] for point in points] for name, points in data.items()}
    emit(
        "ablation_policy2",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Ablation: Broker CPU load across all four policies — {scale_note}",
        ),
    )

    slack = 1.05  # simulation noise allowance
    for i in range(len(mu)):
        assert series["III"][i] <= series["II.a"][i] * slack, mu[i]
        assert series["II.a"][i] <= series["I"][i] * slack, mu[i]
        assert series["III"][i] <= series["II.b"][i] * slack, mu[i]
        assert series["II.b"][i] <= series["I"][i] * slack, mu[i]
