"""Figure 7 — broker communication load, four configurations.

Same orderings as Figure 6 under the message-count metric ("the
communication cost of each operation [is] proportional to the number of
messages sent/received").
"""

from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of

CONFIGS = [("I", "proactive"), ("I", "lazy"), ("III", "proactive"), ("III", "lazy")]


def run_all():
    return {cfg: rows_of(availability_sweep(*cfg)) for cfg in CONFIGS}


def test_fig7_broker_comm_load(benchmark, scale_note):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mu = [r["mu_hours"] for r in data[CONFIGS[0]]]
    series = {
        f"{policy}+{sync[:4]}": [r["broker_comm"] for r in rows]
        for (policy, sync), rows in data.items()
    }
    emit(
        "fig7_broker_comm",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 7: Broker Communication Load (message endpoints) — {scale_note}",
        ),
    )

    for i in range(len(mu)):
        # Lazy < proactive holds everywhere.
        assert series["I+lazy"][i] < series["I+proa"][i], mu[i]
        assert series["III+lazy"][i] < series["III+proa"][i], mu[i]
        # Policy III <= policy I on the *message* metric holds in the
        # operating region; at the extreme low-availability corner III's
        # replacement purchases and hoarded-coin downtime renewals cost as
        # many broker messages as the downtime transfers they avoid (their
        # CPU weights differ, which is why Figure 6's ordering is clean).
        if mu[i] < 1.0:
            continue
        assert series["III+proa"][i] <= series["I+proa"][i] * 1.02, mu[i]
        assert series["III+lazy"][i] <= series["I+lazy"][i] * 1.02, mu[i]
