"""Figure 4 — average peer load, Policy I + proactive sync.

Paper shapes: "average peer load rises as peer availability increases …
One striking point though, is that under all configurations, transfers
dominate peer load."
"""

from repro.analysis.series import is_increasing
from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of

PEER_SERIES = (
    "purchase",
    "issue",
    "transfer",
    "renewal",
    "downtime_transfer",
    "downtime_renewal",
    "sync",
)


def test_fig4_peer_load_policy1_proactive(benchmark, scale_note):
    rows = rows_of(benchmark.pedantic(availability_sweep, args=("I", "proactive"), rounds=1, iterations=1))
    mu = [r["mu_hours"] for r in rows]
    series = {name: [round(r[f"peer_avg_{name}"], 2) for r in rows] for name in PEER_SERIES}
    emit(
        "fig4_peer_load_pro",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 4: Average Peer Load, Policy I + Proactive Sync — {scale_note}",
        ),
    )

    # Transfers dominate wherever payments are non-negligible.  At the
    # extreme left of the sweep (α ≈ 0.11) payments all but vanish while
    # churn-driven syncs continue, so the dominance claim — like the
    # paper's — is about the operating region, not the degenerate corner.
    for i in range(len(mu)):
        if mu[i] < 1.0:
            continue
        transfer = series["transfer"][i]
        others = [series[name][i] for name in PEER_SERIES if name != "transfer"]
        assert transfer >= max(others), (mu[i], transfer, others)
    # Transfer load (and total peer load) rises with availability.
    assert is_increasing(series["transfer"], tolerance=0.05)
    totals = [sum(series[name][i] for name in PEER_SERIES) for i in range(len(mu))]
    assert is_increasing(totals, tolerance=0.10), totals
