"""Ablation — layered coins as the offline-transfer fallback (Section 7).

    "layered coins can be a lightweight alternative to transfer-via-broker
    when coin owners are offline.  To alleviate the size and security
    problems mentioned above, a maximum number of layers can be imposed."

Compares Policy I (offline coins via broker downtime transfers) against
Policy I.layered (offline coins via signature stacking, broker only at the
layer cap) across the availability sweep.  Expected trade:

* broker load drops — the downtime-transfer series almost vanishes;
* peer CPU rises — payees verify ever-longer chains (depth-dependent
  verifications are accounted exactly);
* chain depth stays modest under the cap, and grows as availability falls
  (offline owners are the trigger).
"""

from repro.analysis.tables import format_series_table
from repro.sim.config import setup_a_configs
from repro.sim.policies import POLICY_I, POLICY_I_LAYERED
from repro.sim.engine import build_simulation

from _common import FULL_SCALE, emit


def run_comparison():
    rows = []
    for base_config in setup_a_configs(policy=POLICY_I, sync_mode="lazy", small=not FULL_SCALE):
        from dataclasses import replace

        plain = build_simulation(base_config).run().metrics
        layered = build_simulation(replace(base_config, policy=POLICY_I_LAYERED)).run().metrics
        layered_count = layered.ops["layered_transfer"]
        rows.append(
            {
                "mu": base_config.mean_online / 3600.0,
                "plain_broker_cpu": plain.broker_cpu_load(),
                "layered_broker_cpu": layered.broker_cpu_load(),
                "plain_dtransfers": plain.ops["downtime_transfer"],
                "layered_dtransfers": layered.ops["downtime_transfer"],
                "layered_transfers": layered_count,
                "avg_depth": (layered.layered_depth_total / layered_count) if layered_count else 0.0,
                "max_depth": layered.layered_depth_max,
                "plain_peer_cpu": plain.peer_cpu_load_total(),
                "layered_peer_cpu": layered.peer_cpu_load_total(),
            }
        )
    return rows


def test_ablation_layered_offline_transfers(benchmark, scale_note):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    mu = [r["mu"] for r in rows]
    series = {
        "broker_cpu(I)": [r["plain_broker_cpu"] for r in rows],
        "broker_cpu(I.layered)": [r["layered_broker_cpu"] for r in rows],
        "dtransfers(I)": [r["plain_dtransfers"] for r in rows],
        "dtransfers(I.layered)": [r["layered_dtransfers"] for r in rows],
        "layered_transfers": [r["layered_transfers"] for r in rows],
        "avg_depth": [round(r["avg_depth"], 2) for r in rows],
    }
    emit(
        "ablation_layered",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Ablation: layered-coin offline transfers vs broker downtime transfers — {scale_note}",
        ),
    )

    for r in rows:
        # Broker relief: layered fallback strictly reduces broker CPU, and
        # nearly eliminates downtime transfers (cap-overflow residue only).
        assert r["layered_broker_cpu"] < r["plain_broker_cpu"], r["mu"]
        assert r["layered_dtransfers"] <= r["plain_dtransfers"] * 0.25, r["mu"]
        # The paper's cost: peers pay more (chain verification).
        if r["layered_transfers"] > 100:
            assert r["layered_peer_cpu"] > r["plain_peer_cpu"] * 0.95, r["mu"]
        # The cap holds.
        assert r["max_depth"] <= 16
    # Depth pressure rises as availability falls.
    assert rows[0]["avg_depth"] > rows[-1]["avg_depth"]
