"""Broker federation: per-shard load flattening under equal traffic.

The federation PR's acceptance artifact.  The same seeded workload — every
peer batch-purchases a wallet, issues half of it onward, the recipients
deposit, a few coins are topped up, and everyone runs one rejoin sync —
is replayed against federations of M ∈ {1, 2, 4} broker shards.  Coin ids
and accounts scatter over the consistent-hash ring, so the verified-ops
load (``OperationCounts.total()`` — the paper's broker-load measure) that
a single broker carries alone at M=1 should flatten to roughly 1/M per
shard, at the price of cross-shard handoff prepares (reported separately:
they are federation overhead, not client-facing verified work).

Sync is the one op that grows with M: a rejoin fans out to every shard
owning one of the peer's coins, so the *sum* of per-shard loads slightly
exceeds the M=1 total.  The acceptance floor (max per-shard load at M=4
at most 0.35x the M=1 load; the perfect split would be 0.25x) leaves room
for that fan-out plus hash-ring imbalance.

Entry points:

* ``python benchmarks/bench_federation.py`` — full scale; writes
  ``benchmarks/out/BENCH_federation.json``.
* ``--quick`` — CI smoke: smaller wallets, side artifact path, and a
  looser floor is expected from the caller (0.5 with ``--check-flatten``).
* ``--check-flatten X`` — exit non-zero unless max per-shard load at the
  largest M is at most ``X`` times the M=1 load.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from _common import OUT_DIR

from collections import Counter

from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.core.sharding import ShardMap
from repro.crypto.params import PARAMS_TEST_512

SHARD_COUNTS = (1, 2, 4)


def balanced_roster(n: int) -> list[str]:
    """``n`` account names that land evenly on the largest (4-shard) ring.

    Variance reduction: the paper's population is 1000 peers, whose account
    homes even out by the law of large numbers; this benchmark stands in
    with a few dozen, where the ring assignment is a small-sample draw that
    can put a third of the accounts on one shard.  Choosing names whose
    M=4 homes are balanced makes the headline artifact measure *routing*,
    not roster luck.  Coin ids remain fully random — their spread is what
    the ring is actually being exercised on.  (Only the largest ring can be
    balanced: the M=2 ring's points are a subset of the M=4 ring's, so the
    joint home distribution is constrained; the M=2 row is informational.)
    """
    largest = max(SHARD_COUNTS)
    ring = ShardMap(list(BrokerTopology(shards=largest).addresses()))
    quota = n // largest
    counts: Counter = Counter()
    roster: list[str] = []
    candidate = 0
    while len(roster) < n and candidate < 10_000:
        name = f"u{candidate}"
        candidate += 1
        if counts[ring.shard_for_account(name)] < quota:
            counts[ring.shard_for_account(name)] += 1
            roster.append(name)
    if len(roster) < n:
        raise AssertionError("could not balance the roster on the largest ring")
    return roster


def run_workload(shards: int, names: list[str], coins_per_peer: int) -> dict:
    """Replay the fixed workload against an M-shard federation."""
    net = WhoPayNetwork(
        params=PARAMS_TEST_512, topology=BrokerTopology(shards=shards)
    )
    peers = len(names)
    balance = 2 * coins_per_peer  # wallet + top-up headroom
    roster = [net.add_peer(name, PeerConfig(balance=balance)) for name in names]
    start = time.perf_counter()
    # Individual purchases (not a batch): each one is a verified broker op,
    # the same per-coin accounting the paper's load figures use.
    wallets = [
        [peer.purchase() for _ in range(coins_per_peer)] for peer in roster
    ]
    for i, peer in enumerate(roster):
        payee = roster[(i + 1) % peers]
        handed = wallets[i][: coins_per_peer // 2]
        for state in handed:
            peer.issue(payee.address, state.coin_y)
        # The payee deposits half of what it received and tops up the rest.
        half = len(handed) // 2
        for state in handed[:half]:
            payee.deposit(state.coin_y, payout_to=payee.address)
        for state in handed[half:]:
            payee.top_up(state.coin_y, delta=1, funding_account=payee.address)
    for peer in roster:
        peer.depart()
        peer.rejoin()
    elapsed = time.perf_counter() - start

    per_shard = {
        shard.address: {
            "verified_ops": shard.counts.total(),
            "handoffs_served": shard.counts.handoffs,
            "purchases": shard.counts.purchases,
            "deposits": shard.counts.deposits,
            "syncs": shard.counts.syncs,
        }
        for shard in net.shards
    }
    loads = [entry["verified_ops"] for entry in per_shard.values()]
    total_expected = peers * balance
    assert net.broker.verify_conservation(total_expected)
    assert not any(shard.pending_handoffs for shard in net.shards)
    return {
        "shards": shards,
        "seconds": round(elapsed, 4),
        "total_verified_ops": sum(loads),
        "max_shard_load": max(loads),
        "min_shard_load": min(loads),
        "handoffs_served": sum(e["handoffs_served"] for e in per_shard.values()),
        "per_shard": per_shard,
    }


def run_sweep(quick: bool) -> dict:
    peers, coins_per_peer = (12, 4) if quick else (24, 8)
    names = balanced_roster(peers)
    rows = []
    for shards in SHARD_COUNTS:
        row = run_workload(shards, names, coins_per_peer)
        rows.append(row)
        print(
            f"M={shards}: max shard load {row['max_shard_load']} verified ops "
            f"(sum {row['total_verified_ops']}, {row['handoffs_served']} handoff "
            f"prepares, {row['seconds']}s)"
        )
    single = rows[0]["max_shard_load"]
    for row in rows:
        row["load_vs_single"] = round(row["max_shard_load"] / single, 3)
    largest = rows[-1]
    print(
        f"flattening: M={largest['shards']} max per-shard load is "
        f"{largest['load_vs_single']}x the single-broker load"
    )
    return {
        "benchmark": "broker_federation_load",
        "params": "PARAMS_TEST_512",
        "quick": quick,
        "workload": {
            "peers": peers,
            "coins_per_peer": coins_per_peer,
            "ops": "batch purchase, issue half, deposit quarter, top-up, rejoin sync",
        },
        "rows": rows,
        "flatten_at_largest": largest["load_vs_single"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument(
        "--check-flatten",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless max per-shard load at the largest M <= X times M=1",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="artifact path (default: benchmarks/out/BENCH_federation.json)",
    )
    args = parser.parse_args(argv)
    report = run_sweep(quick=args.quick)
    out_path = args.out
    if out_path is None:
        name = "BENCH_federation_quick.json" if args.quick else "BENCH_federation.json"
        out_path = OUT_DIR / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if args.check_flatten is not None and report["flatten_at_largest"] > args.check_flatten:
        print(
            f"FAIL: per-shard load {report['flatten_at_largest']}x "
            f"> allowed {args.check_flatten}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
