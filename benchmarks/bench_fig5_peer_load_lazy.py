"""Figure 5 — average peer load, Policy I + lazy sync.

Same as Figure 4 with two lazy-sync differences: no syncs, and a *checks*
series appears (the owner-side public-binding reads that replace them);
transfers still dominate.
"""

from repro.analysis.series import is_increasing
from repro.analysis.tables import format_series_table

from _common import availability_sweep, emit, rows_of

PEER_SERIES = (
    "purchase",
    "issue",
    "transfer",
    "renewal",
    "downtime_transfer",
    "downtime_renewal",
    "check",
    "lazy_sync",
    "sync",
)


def test_fig5_peer_load_policy1_lazy(benchmark, scale_note):
    rows = rows_of(benchmark.pedantic(availability_sweep, args=("I", "lazy"), rounds=1, iterations=1))
    mu = [r["mu_hours"] for r in rows]
    series = {name: [round(r[f"peer_avg_{name}"], 2) for r in rows] for name in PEER_SERIES}
    emit(
        "fig5_peer_load_lazy",
        format_series_table(
            "mu_hours", mu, series,
            title=f"Figure 5: Average Peer Load, Policy I + Lazy Sync — {scale_note}",
        ),
    )

    assert all(v == 0 for v in series["sync"])
    assert any(v > 0 for v in series["check"])  # checks replace syncs
    # Lazy syncs only happen when a check finds broker-modified state.
    for check, lazy in zip(series["check"], series["lazy_sync"]):
        assert lazy <= check
    # Transfers dominate (outside the degenerate α ≈ 0.11 corner, as in
    # Figure 4's bench), and rise with availability.
    assert is_increasing(series["transfer"], tolerance=0.05)
    for i in range(len(mu)):
        if mu[i] < 1.0:
            continue
        transfer = series["transfer"][i]
        others = [series[name][i] for name in PEER_SERIES if name != "transfer"]
        assert transfer >= max(others), (mu[i], transfer, others)
