"""Pytest fixtures for the benchmark suite (helpers live in _common.py)."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from _common import FULL_SCALE


@pytest.fixture(scope="session")
def scale_note() -> str:
    """Human-readable scale marker included in emitted tables."""
    if FULL_SCALE:
        return "paper scale (1000 peers, 10 days)"
    return "reduced scale (150 peers, 5 days; WHOPAY_FULL=1 for paper scale)"
