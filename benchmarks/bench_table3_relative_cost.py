"""Table 3 — relative operation cost.

The paper pins the simulator's cost model to: keygen 1, regular signature
generation/verification 2, group signature generation/verification 4 (a
"wild guess" that efficient group signatures cost twice DSA).  This bench

1. re-measures the regular-signature ratios with our DSA (they should be
   near the paper's 2x guess, since DSA sign/verify really is ~2 modexps
   against keygen's one), and
2. measures our *actual* group-signature scheme, whose cost is linear in
   the roster size — reported so the deviation from the paper's pinned
   model is explicit (DESIGN.md §4, deviation 2).
"""

import time

from repro.analysis.tables import format_table
from repro.crypto.dsa import dsa_generate, dsa_sign, dsa_verify
from repro.crypto.group_signature import GroupManager, group_sign, group_verify
from repro.crypto.params import PARAMS_1024_160
from repro.sim.costs import MICRO_COST

from _common import emit

ROSTER_SIZE = 8
ITERATIONS = 20


def measure_all():
    params = PARAMS_1024_160
    timings = {}

    start = time.perf_counter()
    keypairs = [dsa_generate(params) for _ in range(ITERATIONS)]
    timings["keygen"] = (time.perf_counter() - start) / ITERATIONS

    keypair = keypairs[0]
    messages = [b"m%d" % i for i in range(ITERATIONS)]
    start = time.perf_counter()
    signatures = [dsa_sign(keypair, message) for message in messages]
    timings["sig"] = (time.perf_counter() - start) / ITERATIONS

    start = time.perf_counter()
    for message, signature in zip(messages, signatures):
        assert dsa_verify(keypair.public, message, signature)
    timings["ver"] = (time.perf_counter() - start) / ITERATIONS

    manager = GroupManager(params)
    members = [manager.register(f"member-{i}") for i in range(ROSTER_SIZE)]
    gpk = manager.public_key()
    start = time.perf_counter()
    gsigs = [group_sign(gpk, members[0], message) for message in messages[:5]]
    timings["gsig"] = (time.perf_counter() - start) / 5

    start = time.perf_counter()
    for message, gsig in zip(messages[:5], gsigs):
        assert group_verify(gpk, message, gsig)
    timings["gver"] = (time.perf_counter() - start) / 5

    return timings


def test_table3_relative_costs(benchmark):
    timings = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    base = timings["keygen"]
    measured = {name: value / base for name, value in timings.items()}

    rows = [
        {
            "Operation": name,
            "paper_relative": MICRO_COST[name],
            "measured_relative": round(measured[name], 2),
        }
        for name in ("keygen", "sig", "ver", "gsig", "gver")
    ]
    emit(
        "table3_relative_cost",
        format_table(
            rows,
            ["Operation", "paper_relative", "measured_relative"],
            title=(
                "Table 3: Relative Operation Cost "
                f"(group scheme measured at roster size {ROSTER_SIZE}; the paper "
                "pins 2x for a hypothetical constant-size scheme — see DESIGN.md §4)"
            ),
        ),
    )

    # Shape checks.  Regular DSA: sign and verify cost a small multiple of
    # keygen (the paper's model says 2x; our implementation lands in the
    # same small-constant band).
    assert 0.5 <= measured["sig"] <= 6
    assert 0.5 <= measured["ver"] <= 8
    # Our real (linear-size) group signatures are strictly more expensive
    # than regular signatures — the qualitative fact Table 3 encodes.
    assert measured["gsig"] > measured["sig"]
    assert measured["gver"] > measured["ver"]
